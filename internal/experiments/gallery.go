// This file is the scenario gallery: a declarative event schedule (Timeline)
// injected into a dynamics timeline run — server outages with forced repair
// and recovery, partial-capacity degradations and correlated regional
// failures over geometric failure domains, flash-crowd and diurnal demand
// revisions through the mass-only revise path, and rolling model-library
// churn via mid-timeline instance rebuilds — executed identically through
// the unsharded engine (RunGallery, externally-driven mobility) and the
// sharded engine (RunGallerySharded). Each run emits a golden-pinnable GalleryResult: the
// hit-ratio trajectory per checkpoint, which events landed where, the
// re-placement count, and the measured recovery latency after an outage.
package experiments

import (
	"fmt"
	"math"

	"trimcaching/internal/dynamics"
	"trimcaching/internal/geom"
	"trimcaching/internal/libgen"
	"trimcaching/internal/mobility"
	"trimcaching/internal/modellib"
	"trimcaching/internal/placement"
	"trimcaching/internal/rng"
	"trimcaching/internal/scenario"
	"trimcaching/internal/shard"
	"trimcaching/internal/topology"
	"trimcaching/internal/wireless"
	"trimcaching/internal/workload"
)

// EventKind names one scenario-event family.
type EventKind string

// The event families the gallery can inject at a checkpoint boundary.
const (
	// EventOutage takes Servers out of service and forces an immediate
	// repair over the reduced server set.
	EventOutage EventKind = "outage"
	// EventRecovery returns Servers to service and forces a re-placement
	// onto the restored capacity (a degradation trigger never fires on
	// recovery — hit ratios only improve when servers come back).
	EventRecovery EventKind = "recovery"
	// EventDemand revises every user's popularity row to a blend of its
	// base profile and a target profile, scaled by MassScale, through the
	// mass-only revise path.
	EventDemand EventKind = "demand"
	// EventGrow appends Models adapters from the reserve library and
	// rebuilds placements over the grown library at the current positions.
	EventGrow EventKind = "grow"
	// EventDegrade shrinks each of Servers to the CapacityBytes storage
	// budget (partial-capacity degradation: the server keeps serving, with
	// less room) and forces a re-placement; a negative CapacityBytes
	// restores each server's configured capacity.
	EventDegrade EventKind = "degrade"
	// EventRegional is a correlated failure of every server whose position
	// Region contains: CapacityBytes == 0 takes the whole region down,
	// CapacityBytes > 0 degrades every server in it to that budget, and a
	// negative CapacityBytes recovers the region (servers back up, budgets
	// restored). Each variant forces a re-placement.
	EventRegional EventKind = "regional"
)

// Event is one timestamped scenario event. Events fire at the start of
// their checkpoint, before that checkpoint's mobility slots.
type Event struct {
	// Checkpoint is when the event fires, counting from 1.
	Checkpoint int `json:"checkpoint"`
	// Kind selects the event family.
	Kind EventKind `json:"kind"`
	// Servers lists the affected servers (outage and recovery).
	Servers []int `json:"servers,omitempty"`
	// HotModel is the demand target: a model id the crowd converges on, or
	// -1 for each user's own popularity profile reversed (the diurnal
	// "different population is awake" wave).
	HotModel int `json:"hotModel,omitempty"`
	// Weight is the demand blend weight in [0, 1]: 0 restores the base
	// profile, 1 replaces it with the target.
	Weight float64 `json:"weight,omitempty"`
	// MassScale multiplies total request mass (demand); 0 means 1.
	MassScale float64 `json:"massScale,omitempty"`
	// Models is how many reserve adapters a grow event appends.
	Models int `json:"models,omitempty"`
	// CapacityBytes is the storage budget of a degrade or regional event:
	// positive shrinks to this budget, negative restores the configured
	// capacity, and zero (regional only) means a full outage of the region.
	CapacityBytes int64 `json:"capacityBytes,omitempty"`
	// Region is the failure domain of a regional event.
	Region *geom.Region `json:"region,omitempty"`
}

// Timeline is a declarative event schedule, ordered by checkpoint.
type Timeline struct {
	Events []Event `json:"events"`
}

// at returns the events firing at checkpoint cp, in schedule order.
func (t Timeline) at(cp int) []Event {
	var evs []Event
	for _, ev := range t.Events {
		if ev.Checkpoint == cp {
			evs = append(evs, ev)
		}
	}
	return evs
}

// GalleryConfig parameterizes one gallery scenario run. The deployment is
// the shard benchmark's: a grid server layout at the paper's density (10
// servers per km²), a LoRA library over a shared 1B-parameter foundation
// model, LLM-provisioning deadlines, and an occasional-download activity
// model — the setting where every event family has visible effect.
type GalleryConfig struct {
	// Name labels the scenario in artifacts ("outage", "flashcrowd", ...).
	Name string `json:"name"`
	// Servers, Users, Models shape the deployment; ReserveModels is how
	// many extra adapters the master library holds for grow events.
	Servers       int `json:"servers"`
	Users         int `json:"users"`
	Models        int `json:"models"`
	ReserveModels int `json:"reserveModels"`
	// CapacityBytes is the per-server storage budget; 0 means 2.06 GB —
	// the shared 2 GB foundation plus 6 of the 10 MB adapters — so each
	// server caches a small slice of the library and placement has to
	// chase demand.
	CapacityBytes int64 `json:"capacityBytes"`
	// DurationMin, CheckpointMin, SlotS shape the timeline (§VII-E).
	DurationMin   int     `json:"durationMin"`
	CheckpointMin int     `json:"checkpointMin"`
	SlotS         float64 `json:"slotS"`
	// Realizations is the fading realizations per checkpoint measurement.
	Realizations int `json:"realizations"`
	// Mode selects Incremental or Rebuild refreshes (pinned identical).
	Mode dynamics.Mode `json:"mode"`
	// Workers bounds update/measurement parallelism; 0 means GOMAXPROCS.
	// Results are bit-identical for any worker count.
	Workers int `json:"workers,omitempty"`
	// Shards is the cell count for the sharded leg (RunGallerySharded).
	Shards int `json:"shards"`
	// Seed makes the whole run deterministic.
	Seed uint64 `json:"seed"`
	// RecoveryFrac defines recovery: the first checkpoint at or after the
	// recovery event whose hit ratio reaches RecoveryFrac times the
	// pre-outage hit ratio. 0 means 0.98.
	RecoveryFrac float64 `json:"recoveryFrac"`
	// Timeline is the event schedule (see GalleryScenario).
	Timeline Timeline `json:"timeline"`
}

// DefaultGalleryConfig returns the reduced-scale gallery setting used by
// the golden tests and the CI smoke: large enough that every event family
// moves the hit ratio, small enough to run in seconds.
func DefaultGalleryConfig() GalleryConfig {
	return GalleryConfig{
		Servers:       12,
		Users:         400,
		Models:        24,
		ReserveModels: 8,
		CapacityBytes: 2_060_000_000,
		DurationMin:   120,
		CheckpointMin: 10,
		SlotS:         5,
		Realizations:  4,
		Mode:          dynamics.Incremental,
		Shards:        4,
		Seed:          1,
		RecoveryFrac:  0.98,
	}
}

// Validate reports the first invalid field, if any.
func (c GalleryConfig) Validate() error {
	if c.Servers <= 0 || c.Users <= 0 || c.Models <= 0 {
		return fmt.Errorf("gallery: need positive servers/users/models, got %d/%d/%d", c.Servers, c.Users, c.Models)
	}
	if c.ReserveModels < 0 {
		return fmt.Errorf("gallery: ReserveModels must be >= 0, got %d", c.ReserveModels)
	}
	if c.DurationMin <= 0 || c.CheckpointMin <= 0 || c.DurationMin < c.CheckpointMin {
		return fmt.Errorf("gallery: bad timeline %d/%d min", c.DurationMin, c.CheckpointMin)
	}
	if c.SlotS <= 0 {
		return fmt.Errorf("gallery: SlotS must be positive")
	}
	if c.Realizations <= 0 {
		return fmt.Errorf("gallery: Realizations must be positive")
	}
	if c.Shards <= 0 {
		return fmt.Errorf("gallery: Shards must be positive, got %d", c.Shards)
	}
	if c.RecoveryFrac < 0 || c.RecoveryFrac > 1 {
		return fmt.Errorf("gallery: RecoveryFrac %v outside [0, 1]", c.RecoveryFrac)
	}
	checkpoints := c.DurationMin / c.CheckpointMin
	grown := 0
	for e, ev := range c.Timeline.Events {
		if ev.Checkpoint < 1 || ev.Checkpoint > checkpoints {
			return fmt.Errorf("gallery: event %d at checkpoint %d outside [1, %d]", e, ev.Checkpoint, checkpoints)
		}
		switch ev.Kind {
		case EventOutage, EventRecovery:
			if len(ev.Servers) == 0 {
				return fmt.Errorf("gallery: event %d (%s) names no servers", e, ev.Kind)
			}
			for _, m := range ev.Servers {
				if m < 0 || m >= c.Servers {
					return fmt.Errorf("gallery: event %d: server %d out of range [0,%d)", e, m, c.Servers)
				}
			}
		case EventDemand:
			if ev.HotModel < -1 || ev.HotModel >= c.Models {
				return fmt.Errorf("gallery: event %d: hot model %d out of range [-1,%d)", e, ev.HotModel, c.Models)
			}
			if ev.Weight < 0 || ev.Weight > 1 {
				return fmt.Errorf("gallery: event %d: weight %v outside [0, 1]", e, ev.Weight)
			}
			if ev.MassScale < 0 {
				return fmt.Errorf("gallery: event %d: mass scale %v negative", e, ev.MassScale)
			}
		case EventGrow:
			if ev.Models <= 0 {
				return fmt.Errorf("gallery: event %d grows by %d models", e, ev.Models)
			}
			grown += ev.Models
		case EventDegrade:
			if len(ev.Servers) == 0 {
				return fmt.Errorf("gallery: event %d (%s) names no servers", e, ev.Kind)
			}
			for _, m := range ev.Servers {
				if m < 0 || m >= c.Servers {
					return fmt.Errorf("gallery: event %d: server %d out of range [0,%d)", e, m, c.Servers)
				}
			}
			if ev.CapacityBytes == 0 {
				return fmt.Errorf("gallery: event %d (degrade) names no budget; use > 0 to shrink or < 0 to restore", e)
			}
		case EventRegional:
			if ev.Region == nil {
				return fmt.Errorf("gallery: event %d (regional) names no region", e)
			}
			if err := ev.Region.Validate(); err != nil {
				return fmt.Errorf("gallery: event %d: %w", e, err)
			}
		default:
			return fmt.Errorf("gallery: event %d has unknown kind %q", e, ev.Kind)
		}
	}
	if grown > c.ReserveModels {
		return fmt.Errorf("gallery: timeline grows %d models but only %d are reserved", grown, c.ReserveModels)
	}
	return nil
}

// GalleryNames lists the built-in scenarios in gallery order.
func GalleryNames() []string {
	return []string{"outage", "flashcrowd", "diurnal", "churn", "degrade", "regional"}
}

// GalleryScenario fills base's Name and Timeline with one of the built-in
// scenario families, scheduled relative to base's checkpoint count:
//
//   - "outage": a quarter of the servers fail a third of the way in and
//     return at two thirds, with forced repair on both edges.
//   - "flashcrowd": demand converges hard on one model (blend 0.8) with a
//     1.5x mass surge, then reverts.
//   - "diurnal": every checkpoint re-blends demand along a raised-cosine
//     wave toward each user's reversed profile — a different population
//     waking up through the day.
//   - "churn": the reserve adapters roll in as two library grows.
//   - "degrade": a quarter of the servers lose storage a third of the way
//     in — shrunk to the foundation plus ~2 adapters, so they keep serving
//     a reduced slice — and get their capacity back at two thirds.
//   - "regional": a correlated failure at a third — a disk-shaped blackout
//     around one corner of the grid plus a brownout (degraded budgets)
//     across the opposite half — recovered and restored at two thirds.
func GalleryScenario(name string, base GalleryConfig) (GalleryConfig, error) {
	cfg := base
	cfg.Name = name
	checkpoints := cfg.DurationMin / cfg.CheckpointMin
	third := (checkpoints + 2) / 3
	twoThirds := (2*checkpoints + 2) / 3
	switch name {
	case "outage":
		downed := make([]int, 0, cfg.Servers/4)
		for m := 0; m < (cfg.Servers+3)/4; m++ {
			downed = append(downed, m)
		}
		cfg.Timeline = Timeline{Events: []Event{
			{Checkpoint: third, Kind: EventOutage, Servers: downed},
			{Checkpoint: twoThirds, Kind: EventRecovery, Servers: downed},
		}}
	case "flashcrowd":
		cfg.Timeline = Timeline{Events: []Event{
			{Checkpoint: third, Kind: EventDemand, HotModel: 0, Weight: 0.8, MassScale: 1.5},
			{Checkpoint: twoThirds, Kind: EventDemand, HotModel: 0, Weight: 0, MassScale: 1},
		}}
	case "diurnal":
		evs := make([]Event, 0, checkpoints)
		for cp := 1; cp <= checkpoints; cp++ {
			w := 0.45 * (1 - math.Cos(2*math.Pi*float64(cp)/float64(checkpoints)))
			evs = append(evs, Event{Checkpoint: cp, Kind: EventDemand, HotModel: -1, Weight: w, MassScale: 1})
		}
		cfg.Timeline = Timeline{Events: evs}
	case "churn":
		first := cfg.ReserveModels / 2
		second := cfg.ReserveModels - first
		cfg.Timeline = Timeline{Events: []Event{
			{Checkpoint: third, Kind: EventGrow, Models: first},
			{Checkpoint: twoThirds, Kind: EventGrow, Models: second},
		}}
	case "degrade":
		shrunk := make([]int, 0, (cfg.Servers+3)/4)
		for m := 0; m < (cfg.Servers+3)/4; m++ {
			shrunk = append(shrunk, m)
		}
		cfg.Timeline = Timeline{Events: []Event{
			{Checkpoint: third, Kind: EventDegrade, Servers: shrunk, CapacityBytes: galleryDegradeBytes},
			{Checkpoint: twoThirds, Kind: EventDegrade, Servers: shrunk, CapacityBytes: -1},
		}}
	case "regional":
		side := gallerySideM(cfg.Servers)
		corner := geom.DiskRegion(side/4, side/4, side/3)
		band := geom.RectRegion(side/2, 0, side, side)
		cfg.Timeline = Timeline{Events: []Event{
			{Checkpoint: third, Kind: EventRegional, Region: &corner},
			{Checkpoint: third, Kind: EventRegional, Region: &band, CapacityBytes: galleryDegradeBytes},
			{Checkpoint: twoThirds, Kind: EventRegional, Region: &corner, CapacityBytes: -1},
			{Checkpoint: twoThirds, Kind: EventRegional, Region: &band, CapacityBytes: -1},
		}}
	default:
		return GalleryConfig{}, fmt.Errorf("gallery: unknown scenario %q (have %v)", name, GalleryNames())
	}
	return cfg, cfg.Validate()
}

// GalleryStep is one checkpoint of a gallery timeline.
type GalleryStep struct {
	// TimeMin is minutes since the start.
	TimeMin float64 `json:"timeMin"`
	// HitRatio is the fading-averaged cache hit ratio.
	HitRatio float64 `json:"hitRatio"`
	// Replaced reports whether the placement was re-solved here, by the
	// degradation trigger or an event's forced repair.
	Replaced bool `json:"replaced"`
	// Events labels the scenario events that fired at this checkpoint.
	Events []string `json:"events,omitempty"`
}

// GalleryResult is one completed gallery scenario run.
type GalleryResult struct {
	// Scenario is the scenario name; Sharded tells which engine ran it.
	Scenario string `json:"scenario"`
	Sharded  bool   `json:"sharded"`
	// Steps holds one entry per checkpoint, including t = 0.
	Steps []GalleryStep `json:"steps"`
	// Replacements counts re-placements over the whole run, including the
	// re-solves forced by events and library grows.
	Replacements int `json:"replacements"`
	// FinalModels is the active library size at the end (grows included).
	FinalModels int `json:"finalModels"`
	// PreOutageHit is the hit ratio of the checkpoint preceding the first
	// fault event — outage, degrade, or regional failure (0 when the
	// timeline has none).
	PreOutageHit float64 `json:"preOutageHit,omitempty"`
	// RecoveryCheckpoints is how many checkpoints after the recovery event
	// (or capacity restore) the hit ratio first reached RecoveryFrac times
	// PreOutageHit; -1 when the timeline has no recovery or the run never
	// recovered.
	RecoveryCheckpoints int `json:"recoveryCheckpoints"`
	// Handoffs and Grows are sharded-leg counters (cell ownership changes
	// and slot-table overflow rebuilds).
	Handoffs int `json:"handoffs,omitempty"`
	Grows    int `json:"grows,omitempty"`
}

// galleryFoundationParams sizes the shared foundation model (1B parameters,
// 2 GB at fp16), as in the shard benchmark deployment.
const galleryFoundationParams = 1_000_000_000

// galleryDegradeBytes is the degraded per-server budget the built-in
// degrade and regional families shrink to: the 2 GB foundation plus ~2 of
// the 10 MB adapters, down from the default 6 — a brownout that evicts
// most of a server's cached slice without blocking the library outright.
const galleryDegradeBytes = 2_020_000_000

// gallerySideM is the square deployment side at the paper's density (10
// servers per km²) — shared by the topology draw and the regional
// failure-domain geometry, so built-in regions stay aligned with the grid.
func gallerySideM(servers int) float64 {
	return 1000 * math.Sqrt(float64(servers)/10)
}

// gallerySetup is the state shared by both gallery legs: the master
// library and workload (Models+ReserveModels wide), the fixed topology
// draw, and the wireless/placement configuration.
type gallerySetup struct {
	cfg    GalleryConfig
	itot   int
	lib    *modellib.Library
	topo   *topology.Topology
	w      wireless.Config
	master *workload.Workload
	caps   []int64
	tracks []dynamics.Track
}

// newGallerySetup validates cfg and draws the deployment. The topology and
// master workload come from the same "instance" sub-streams Generate uses,
// so the draw is stable in (config, seed) alone.
func newGallerySetup(cfg GalleryConfig) (*gallerySetup, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.CapacityBytes == 0 {
		cfg.CapacityBytes = 2_060_000_000
	}
	if cfg.RecoveryFrac == 0 {
		cfg.RecoveryFrac = 0.98
	}
	itot := cfg.Models + cfg.ReserveModels
	lcfg := libgen.DefaultLoRAConfig(itot)
	lcfg.FoundationParams = galleryFoundationParams
	lib, err := libgen.GenerateLoRA(lcfg)
	if err != nil {
		return nil, fmt.Errorf("gallery: %w", err)
	}
	w := wireless.DefaultConfig()
	// A constrained backhaul (100 Mbps against a 2 GB foundation model)
	// makes relay delivery miss every deadline: models are served from the
	// covering servers' own caches, so per-server capacity binds and every
	// event family — outages, demand waves, library churn — moves the hit
	// ratio instead of being papered over by network-wide relay reach.
	w.BackhaulBps = 1e8
	w.ActiveProb = 0.02
	wl := workload.DefaultConfig()
	wl.DeadlineMinS, wl.DeadlineMaxS = 60, 180
	wl.InferMinS, wl.InferMaxS = 1, 5
	side := gallerySideM(cfg.Servers)
	src := rng.New(cfg.Seed).Split("instance")
	topo, err := topology.Generate(topology.Config{
		AreaSideM:       side,
		NumServers:      cfg.Servers,
		NumUsers:        cfg.Users,
		CoverageRadiusM: w.CoverageRadiusM,
		ServerLayout:    topology.LayoutGrid,
	}, src.Split("topology"))
	if err != nil {
		return nil, fmt.Errorf("gallery: %w", err)
	}
	master, err := workload.Generate(cfg.Users, itot, wl, src.Split("workload"))
	if err != nil {
		return nil, fmt.Errorf("gallery: %w", err)
	}
	return &gallerySetup{
		cfg:    cfg,
		itot:   itot,
		lib:    lib,
		topo:   topo,
		w:      w,
		master: master,
		caps:   placement.UniformCapacities(cfg.Servers, cfg.CapacityBytes),
		tracks: []dynamics.Track{{
			Algorithm: placement.GenAlgorithm{Options: placement.GenOptions{Lazy: true}},
			Trigger:   dynamics.ThresholdTrigger{Degradation: 0.05},
		}},
	}, nil
}

// activeInstance assembles an instance over the first active models of the
// master library, with an aliased workload whose rows are prefixes of the
// master rows — growing the library is then a pure prefix extension, and
// the shared foundation blocks keep their identity across grows.
func (s *gallerySetup) activeInstance(topo *topology.Topology, active int, coordinator bool) (*scenario.Instance, *workload.Workload, error) {
	ids := make([]int, active)
	for i := range ids {
		ids[i] = i
	}
	alib, err := libgen.Subset(s.lib, ids)
	if err != nil {
		return nil, nil, fmt.Errorf("gallery: %w", err)
	}
	awork, err := workload.NewAliased(s.cfg.Users, active)
	if err != nil {
		return nil, nil, fmt.Errorf("gallery: %w", err)
	}
	for k := 0; k < s.cfg.Users; k++ {
		if err := awork.SetUserRows(k, s.master.ProbRow(k)[:active], s.master.DeadlineRow(k)[:active], s.master.InferRow(k)[:active]); err != nil {
			return nil, nil, fmt.Errorf("gallery: %w", err)
		}
	}
	var ins *scenario.Instance
	if coordinator {
		ins, err = scenario.NewCoordinator(topo, alib, awork, s.w)
	} else {
		ins, err = scenario.New(topo, alib, awork, s.w)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("gallery: %w", err)
	}
	return ins, awork, nil
}

// demandState is the current demand blend: every user's live probability
// row is base (the master prefix) blended toward a target profile and
// scaled. Rows are written into ping-ponged arenas so a demand revision
// always rebinds to fresh memory — consumers holding the previous rows
// (aliased cell slot tables in the sharded leg) keep reading stable values
// until their own revise rebinding.
type demandState struct {
	itot   int
	master *workload.Workload
	hot    int
	weight float64
	mass   float64
	arenas [2][]float64
	flip   int
}

func newDemandState(master *workload.Workload, itot int) *demandState {
	return &demandState{itot: itot, master: master, mass: 1}
}

// set records a demand event's blend parameters.
func (d *demandState) set(ev Event) {
	d.hot, d.weight, d.mass = ev.HotModel, ev.Weight, ev.MassScale
	if d.mass == 0 {
		d.mass = 1
	}
}

// active reports whether the live rows differ from the base profile.
func (d *demandState) active() bool { return d.weight != 0 || d.mass != 1 }

// apply rebinds every user's probability row in work to the current blend
// at the given active library width. With no blend in effect the rows go
// back to the master prefixes.
func (d *demandState) apply(work *workload.Workload, active int) error {
	K := work.NumUsers()
	if !d.active() {
		for k := 0; k < K; k++ {
			if err := work.SetUserProbRow(k, d.master.ProbRow(k)[:active]); err != nil {
				return fmt.Errorf("gallery: %w", err)
			}
		}
		return nil
	}
	if d.arenas[d.flip] == nil {
		d.arenas[d.flip] = make([]float64, K*d.itot)
	}
	arena := d.arenas[d.flip]
	d.flip ^= 1
	for k := 0; k < K; k++ {
		base := d.master.ProbRow(k)
		row := arena[k*d.itot : k*d.itot+active]
		for i := 0; i < active; i++ {
			target := 0.0
			switch {
			case d.hot >= 0:
				if i == d.hot {
					target = 1
				}
			default:
				target = base[active-1-i]
			}
			row[i] = d.mass * ((1-d.weight)*base[i] + d.weight*target)
		}
		if err := work.SetUserProbRow(k, row); err != nil {
			return fmt.Errorf("gallery: %w", err)
		}
	}
	return nil
}

// eventLabel renders an event for the step artifact.
func eventLabel(ev Event, active int) string {
	switch ev.Kind {
	case EventOutage, EventRecovery:
		return fmt.Sprintf("%s(%d servers)", ev.Kind, len(ev.Servers))
	case EventDemand:
		mass := ev.MassScale
		if mass == 0 {
			mass = 1
		}
		return fmt.Sprintf("demand(hot=%d w=%.3f mass=%.3f)", ev.HotModel, ev.Weight, mass)
	case EventGrow:
		return fmt.Sprintf("grow(+%d -> %d models)", ev.Models, active)
	case EventDegrade:
		if ev.CapacityBytes < 0 {
			return fmt.Sprintf("degrade(%d servers restored)", len(ev.Servers))
		}
		return fmt.Sprintf("degrade(%d servers -> %.2fGB)", len(ev.Servers), float64(ev.CapacityBytes)/1e9)
	case EventRegional:
		switch {
		case ev.CapacityBytes == 0:
			return fmt.Sprintf("regional(%s down)", ev.Region.Kind)
		case ev.CapacityBytes < 0:
			return fmt.Sprintf("regional(%s recovered)", ev.Region.Kind)
		default:
			return fmt.Sprintf("regional(%s -> %.2fGB)", ev.Region.Kind, float64(ev.CapacityBytes)/1e9)
		}
	default:
		return string(ev.Kind)
	}
}

// finishGallery computes the recovery latency and trims the result.
func finishGallery(res *GalleryResult, cfg GalleryConfig, recoveryCp int) {
	res.RecoveryCheckpoints = -1
	if recoveryCp < 0 || res.PreOutageHit <= 0 {
		return
	}
	target := cfg.RecoveryFrac * res.PreOutageHit
	for cp := recoveryCp; cp < len(res.Steps); cp++ {
		if res.Steps[cp].HitRatio >= target {
			res.RecoveryCheckpoints = cp - recoveryCp
			return
		}
	}
}

// RunGallery runs one gallery scenario through the unsharded dynamics
// engine. The driver owns the mobility population (the engine runs in
// ExternalMobility mode, exactly as the shard layer drives its cells) so
// that scenario events can be injected at checkpoint boundaries: outages
// and recoveries thread SetServersDown deltas through the evaluator and
// force a Replace, demand revisions rebind probability rows and flow
// through ApplyExternal's mass-only path, and library grows rebuild the
// engine over the widened instance at the current user positions — with
// the current down set re-applied first, so the grown t = 0 solve is over
// the reduced server set too.
func RunGallery(cfg GalleryConfig) (*GalleryResult, error) {
	s, err := newGallerySetup(cfg)
	if err != nil {
		return nil, err
	}
	cfg = s.cfg // defaults filled
	root := rng.New(cfg.Seed)
	active := cfg.Models
	ins, awork, err := s.activeInstance(s.topo, active, false)
	if err != nil {
		return nil, err
	}
	// liveCaps tracks per-server live storage budgets across degrade and
	// regional events. It doubles as the engine's Capacities (copied at
	// construction), so a grow-rebuilt engine solves its t = 0 placement
	// over the degraded budgets while BaselineCapacities keeps the pristine
	// restore targets — mirroring the shard layer's cell rebuild.
	liveCaps := append([]int64(nil), s.caps...)
	dcfg := dynamics.Config{
		Instance:           ins,
		Capacities:         liveCaps,
		BaselineCapacities: s.caps,
		Tracks:             s.tracks,
		DurationMin:        cfg.DurationMin,
		CheckpointMin:      cfg.CheckpointMin,
		SlotS:              cfg.SlotS,
		Realizations:       cfg.Realizations,
		Workers:            cfg.Workers,
		Mode:               cfg.Mode,
		ExternalMobility:   true,
	}
	eng, err := dynamics.NewEngine(dcfg, root)
	if err != nil {
		return nil, err
	}
	pop, err := mobility.NewPopulation(s.topo.Area(), s.topo.UserPositions(), root.Split("mobility"))
	if err != nil {
		return nil, err
	}
	walkSrc := root.Split("walk")
	K := cfg.Users
	allUsers := make([]int, K)
	for k := range allUsers {
		allUsers[k] = k
	}
	positions := make([]geom.Point, K)
	pop.PositionsInto(positions)
	demand := newDemandState(s.master, s.itot)
	var currentDown []int

	checkpoints := cfg.DurationMin / cfg.CheckpointMin
	slots := int(float64(cfg.CheckpointMin*60)/cfg.SlotS + 0.5)
	res := &GalleryResult{Scenario: cfg.Name, Steps: make([]GalleryStep, 0, checkpoints+1)}
	res.Steps = append(res.Steps, GalleryStep{TimeMin: 0, HitRatio: eng.Baseline(0)})
	replacements := 0
	recoveryCp := -1

	for cp := 1; cp <= checkpoints; cp++ {
		var labels []string
		var massRev []int
		forced := false
		for _, ev := range cfg.Timeline.at(cp) {
			switch ev.Kind {
			case EventOutage, EventRecovery:
				down := ev.Kind == EventOutage
				if down && res.PreOutageHit == 0 {
					res.PreOutageHit = res.Steps[len(res.Steps)-1].HitRatio
				}
				if !down {
					recoveryCp = cp
				}
				if err := eng.SetServersDown(ev.Servers, down); err != nil {
					return nil, err
				}
				currentDown = eng.Instance().DownServers()
				if _, err := eng.Replace(0, cp); err != nil {
					return nil, err
				}
				forced = true
			case EventDemand:
				demand.set(ev)
				if err := demand.apply(awork, active); err != nil {
					return nil, err
				}
				massRev = allUsers
			case EventGrow:
				active += ev.Models
				topoNow, err := s.topo.WithUserPositions(positions)
				if err != nil {
					return nil, err
				}
				grown, gwork, err := s.activeInstance(topoNow, active, false)
				if err != nil {
					return nil, err
				}
				if err := demand.apply(gwork, active); err != nil {
					return nil, err
				}
				if len(currentDown) > 0 {
					if _, err := grown.SetServersDown(currentDown, true); err != nil {
						return nil, err
					}
				}
				// Re-apply live degradations so the grown t = 0 solve is over
				// the reduced budgets too (capacities are bits at the
				// scenario seam, bytes everywhere above).
				for m, b := range liveCaps {
					if b != s.caps[m] {
						if _, err := grown.SetServerCapacity(m, 8*b); err != nil {
							return nil, err
						}
					}
				}
				replacements += eng.Replacements(0) + 1
				dcfg.Instance = grown
				eng, err = dynamics.NewEngine(dcfg, root.SplitIndex("grow", cp))
				if err != nil {
					return nil, err
				}
				awork = gwork
				forced = true
			case EventDegrade:
				if ev.CapacityBytes > 0 && res.PreOutageHit == 0 {
					res.PreOutageHit = res.Steps[len(res.Steps)-1].HitRatio
				}
				if ev.CapacityBytes < 0 {
					recoveryCp = cp
				}
				for _, m := range ev.Servers {
					if err := eng.SetServerCapacity(m, ev.CapacityBytes); err != nil {
						return nil, err
					}
					liveCaps[m] = eng.ServerCapacityBytes(m)
				}
				if _, err := eng.Replace(0, cp); err != nil {
					return nil, err
				}
				forced = true
			case EventRegional:
				servers, err := eng.ServersInRegion(*ev.Region)
				if err != nil {
					return nil, err
				}
				if ev.CapacityBytes >= 0 && res.PreOutageHit == 0 {
					res.PreOutageHit = res.Steps[len(res.Steps)-1].HitRatio
				}
				if ev.CapacityBytes < 0 {
					recoveryCp = cp
				}
				switch {
				case ev.CapacityBytes == 0:
					if err := eng.SetServersDown(servers, true); err != nil {
						return nil, err
					}
				case ev.CapacityBytes < 0:
					if err := eng.SetServersDown(servers, false); err != nil {
						return nil, err
					}
					for _, m := range servers {
						if err := eng.SetServerCapacity(m, -1); err != nil {
							return nil, err
						}
						liveCaps[m] = eng.ServerCapacityBytes(m)
					}
				default:
					for _, m := range servers {
						if err := eng.SetServerCapacity(m, ev.CapacityBytes); err != nil {
							return nil, err
						}
						liveCaps[m] = ev.CapacityBytes
					}
				}
				currentDown = eng.Instance().DownServers()
				if _, err := eng.Replace(0, cp); err != nil {
					return nil, err
				}
				forced = true
			}
			labels = append(labels, eventLabel(ev, active))
		}
		for sl := 0; sl < slots; sl++ {
			if err := pop.Step(cfg.SlotS, walkSrc); err != nil {
				return nil, err
			}
		}
		pop.PositionsInto(positions)
		if err := eng.ApplyExternal(nil, massRev, allUsers, positions); err != nil {
			return nil, err
		}
		st, err := eng.Step(cp)
		if err != nil {
			return nil, err
		}
		res.Steps = append(res.Steps, GalleryStep{
			TimeMin:  st.TimeMin,
			HitRatio: st.HitRatio[0],
			Replaced: st.Replaced[0] || forced,
			Events:   labels,
		})
	}
	res.Replacements = replacements + eng.Replacements(0)
	res.FinalModels = active
	finishGallery(res, cfg, recoveryCp)
	return res, nil
}

// RunGallerySharded runs the same gallery scenario through the sharded
// engine: the global instance is a coordinator over the active library
// prefix, outages map onto cell-local SetServersDown with a forced
// all-cell replace, demand revisions swap global rows and queue through
// ReviseUserMass, and library grows hand the engine a widened coordinator
// instance (GrowLibrary) rebuilt at the engine's current positions.
func RunGallerySharded(cfg GalleryConfig) (*GalleryResult, error) {
	s, err := newGallerySetup(cfg)
	if err != nil {
		return nil, err
	}
	cfg = s.cfg
	active := cfg.Models
	ins, awork, err := s.activeInstance(s.topo, active, true)
	if err != nil {
		return nil, err
	}
	scfg := shard.Config{
		Instance:      ins,
		Capacities:    s.caps,
		Tracks:        s.tracks,
		DurationMin:   cfg.DurationMin,
		CheckpointMin: cfg.CheckpointMin,
		SlotS:         cfg.SlotS,
		Realizations:  cfg.Realizations,
		Mode:          cfg.Mode,
		Shards:        cfg.Shards,
		Workers:       cfg.Workers,
	}
	se, err := shard.NewEngine(scfg, rng.New(cfg.Seed))
	if err != nil {
		return nil, err
	}
	K := cfg.Users
	allUsers := make([]int, K)
	for k := range allUsers {
		allUsers[k] = k
	}
	demand := newDemandState(s.master, s.itot)

	checkpoints := cfg.DurationMin / cfg.CheckpointMin
	res := &GalleryResult{Scenario: cfg.Name, Sharded: true, Steps: make([]GalleryStep, 0, checkpoints+1)}
	step0 := se.InitialStep()
	res.Steps = append(res.Steps, GalleryStep{TimeMin: 0, HitRatio: step0.HitRatio[0]})
	recoveryCp := -1

	for cp := 1; cp <= checkpoints; cp++ {
		var labels []string
		forced := false
		for _, ev := range cfg.Timeline.at(cp) {
			switch ev.Kind {
			case EventOutage, EventRecovery:
				down := ev.Kind == EventOutage
				if down && res.PreOutageHit == 0 {
					res.PreOutageHit = res.Steps[len(res.Steps)-1].HitRatio
				}
				if !down {
					recoveryCp = cp
				}
				if err := se.SetServersDown(ev.Servers, down); err != nil {
					return nil, err
				}
				if err := se.ForceReplace(cp); err != nil {
					return nil, err
				}
				forced = true
			case EventDemand:
				demand.set(ev)
				if err := demand.apply(awork, active); err != nil {
					return nil, err
				}
				if err := se.ReviseUserMass(allUsers); err != nil {
					return nil, err
				}
			case EventGrow:
				active += ev.Models
				topoNow, err := s.topo.WithUserPositions(se.Positions())
				if err != nil {
					return nil, err
				}
				grown, gwork, err := s.activeInstance(topoNow, active, true)
				if err != nil {
					return nil, err
				}
				if err := demand.apply(gwork, active); err != nil {
					return nil, err
				}
				if err := se.GrowLibrary(grown); err != nil {
					return nil, err
				}
				awork = gwork
				forced = true
			case EventDegrade:
				if ev.CapacityBytes > 0 && res.PreOutageHit == 0 {
					res.PreOutageHit = res.Steps[len(res.Steps)-1].HitRatio
				}
				if ev.CapacityBytes < 0 {
					recoveryCp = cp
				}
				for _, m := range ev.Servers {
					if err := se.SetServerCapacity(m, ev.CapacityBytes); err != nil {
						return nil, err
					}
				}
				if err := se.ForceReplace(cp); err != nil {
					return nil, err
				}
				forced = true
			case EventRegional:
				if ev.CapacityBytes >= 0 && res.PreOutageHit == 0 {
					res.PreOutageHit = res.Steps[len(res.Steps)-1].HitRatio
				}
				if ev.CapacityBytes < 0 {
					recoveryCp = cp
				}
				switch {
				case ev.CapacityBytes == 0:
					if err := se.SetRegionDown(*ev.Region, true); err != nil {
						return nil, err
					}
				case ev.CapacityBytes < 0:
					if err := se.SetRegionDown(*ev.Region, false); err != nil {
						return nil, err
					}
					if err := se.DegradeRegion(*ev.Region, -1); err != nil {
						return nil, err
					}
				default:
					if err := se.DegradeRegion(*ev.Region, ev.CapacityBytes); err != nil {
						return nil, err
					}
				}
				if err := se.ForceReplace(cp); err != nil {
					return nil, err
				}
				forced = true
			}
			labels = append(labels, eventLabel(ev, active))
		}
		st, err := se.Checkpoint(cp)
		if err != nil {
			return nil, err
		}
		res.Steps = append(res.Steps, GalleryStep{
			TimeMin:  st.TimeMin,
			HitRatio: st.HitRatio[0],
			Replaced: st.Replaced[0] || forced,
			Events:   labels,
		})
	}
	res.Replacements = se.Replacements(0)
	res.FinalModels = active
	res.Handoffs = se.Handoffs()
	res.Grows = se.Grows()
	finishGallery(res, cfg, recoveryCp)
	return res, nil
}
