package experiments

import (
	"fmt"

	"trimcaching/internal/libgen"
	"trimcaching/internal/placement"
	"trimcaching/internal/rng"
	"trimcaching/internal/sim"
	"trimcaching/internal/stats"
)

// AblationEpsilon sweeps TrimCaching Spec's rounding parameter ε and
// reports both hit ratio and placement runtime: the Prop. 4 trade-off
// between solution quality and DP cost.
func AblationEpsilon(opt Options) (*stats.Table, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	lib, err := specialLibrary(opt)
	if err != nil {
		return nil, err
	}
	epsilons := []float64{0.05, 0.1, 0.2, 0.5, 1.0}
	hit := stats.Series{Label: "Spec hit ratio"}
	secs := stats.Series{Label: "Spec time (s)"}
	for _, eps := range epsilons {
		trial := sim.TrialConfig{
			Library:       lib,
			Scenario:      paperScenario(defaultServers, defaultUsers),
			CapacityBytes: int64(0.5 * GB), // binding so the DP matters
			Algorithms: []placement.Algorithm{
				placement.SpecAlgorithm{Options: placement.SpecOptions{Epsilon: eps, MaxCombos: 1 << 20}},
			},
			Topologies:   opt.Topologies,
			Realizations: opt.Realizations,
			Workers:      opt.Workers,
			Seed:         rng.SaltSeed(opt.Seed, "ablate-epsilon"),
		}
		results, err := sim.Run(trial)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablate-epsilon eps=%v: %w", eps, err)
		}
		hit.Append(eps, results[0].HitRatio)
		secs.Append(eps, results[0].PlaceSeconds)
	}
	return &stats.Table{
		Title:   "Ablation: TrimCaching Spec vs rounding epsilon",
		XLabel:  "epsilon",
		YLabel:  "hit ratio / time",
		Series:  []stats.Series{hit, secs},
		Notes:   []string{fmt.Sprintf("M=%d, K=%d, Q=0.5GB, I=%d", defaultServers, defaultUsers, lib.NumModels())},
		Decimal: 6,
	}, nil
}

// AblationZipf sweeps the request-popularity skew: flatter popularity makes
// caching harder and parameter sharing more valuable.
func AblationZipf(opt Options) (*stats.Table, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	lib, err := specialLibrary(opt)
	if err != nil {
		return nil, err
	}
	exponents := []float64{0.4, 0.6, 0.8, 1.0, 1.2}
	var series []stats.Series
	for pi, s := range exponents {
		sc := paperScenario(defaultServers, defaultUsers)
		sc.Workload.ZipfExponent = s
		trial := sim.TrialConfig{
			Library:       lib,
			Scenario:      sc,
			CapacityBytes: int64(0.5 * GB),
			Algorithms:    []placement.Algorithm{genAlgorithm(), placement.IndependentAlgorithm{}},
			Topologies:    opt.Topologies,
			Realizations:  opt.Realizations,
			Workers:       opt.Workers,
			Seed:          rng.SaltSeed(opt.Seed, fmt.Sprintf("ablate-zipf/%v", s)),
		}
		results, err := sim.Run(trial)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablate-zipf s=%v: %w", s, err)
		}
		if pi == 0 {
			series = make([]stats.Series, len(results))
			for a, r := range results {
				series[a].Label = r.Name
			}
		}
		for a, r := range results {
			series[a].Append(s, r.HitRatio)
		}
	}
	return &stats.Table{
		Title:  "Ablation: cache hit ratio vs Zipf exponent",
		XLabel: "zipf exponent",
		YLabel: "cache hit ratio",
		Series: series,
		Notes:  []string{fmt.Sprintf("M=%d, K=%d, Q=0.5GB, I=%d", defaultServers, defaultUsers, lib.NumModels())},
	}, nil
}

// AblationSharing sweeps the frozen (shared) fraction of the downstream
// models: the storage-efficiency lever the paper's Fig. 1 motivates. Freeze
// ranges are scaled from shallow (little sharing) to the paper's ranges.
func AblationSharing(opt Options) (*stats.Table, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	scales := []float64{0.25, 0.5, 0.75, 1.0}
	var series []stats.Series
	for pi, scale := range scales {
		ranges := map[libgen.ResNetVariant]libgen.FreezeRange{}
		for _, fam := range []libgen.ResNetVariant{libgen.ResNet18, libgen.ResNet34, libgen.ResNet50} {
			fr, err := libgen.PaperFreezeRange(fam)
			if err != nil {
				return nil, err
			}
			fr.Min = int(float64(fr.Min) * scale)
			fr.Max = int(float64(fr.Max) * scale)
			if fr.Min < 1 {
				fr.Min = 1
			}
			if fr.Max < fr.Min {
				fr.Max = fr.Min
			}
			ranges[fam] = fr
		}
		cfg := libgen.DefaultSpecialConfig(opt.LibraryPoolPerFamily)
		cfg.FreezeRanges = ranges
		pool, err := libgen.GenerateSpecial(cfg, rng.New(rng.SaltSeed(opt.Seed, fmt.Sprintf("ablate-sharing/pool/%v", scale))))
		if err != nil {
			return nil, err
		}
		lib, err := libgen.TakeStratified(pool, opt.LibraryModels, rng.New(rng.SaltSeed(opt.Seed, "ablate-sharing/take")))
		if err != nil {
			return nil, err
		}
		trial := sim.TrialConfig{
			Library:       lib,
			Scenario:      paperScenario(defaultServers, defaultUsers),
			CapacityBytes: int64(0.5 * GB),
			Algorithms:    []placement.Algorithm{genAlgorithm(), placement.IndependentAlgorithm{}},
			Topologies:    opt.Topologies,
			Realizations:  opt.Realizations,
			Workers:       opt.Workers,
			Seed:          rng.SaltSeed(opt.Seed, fmt.Sprintf("ablate-sharing/%v", scale)),
		}
		results, err := sim.Run(trial)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablate-sharing scale=%v: %w", scale, err)
		}
		if pi == 0 {
			series = make([]stats.Series, len(results))
			for a, r := range results {
				series[a].Label = r.Name
			}
		}
		sharedFrac := lib.Stats().MeanSharedFrac
		for a, r := range results {
			series[a].Append(sharedFrac, r.HitRatio)
		}
	}
	return &stats.Table{
		Title:  "Ablation: cache hit ratio vs mean shared-parameter fraction",
		XLabel: "shared fraction",
		YLabel: "cache hit ratio",
		Series: series,
		Notes: []string{
			"freeze depths scaled from 25% to 100% of the paper's ranges",
			fmt.Sprintf("M=%d, K=%d, Q=0.5GB", defaultServers, defaultUsers),
		},
	}, nil
}

// AblationLazy compares the naive Algorithm 3 rescan against the lazy
// (Minoux) variant: identical quality, much lower runtime.
func AblationLazy(opt Options) (*stats.Table, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	lib, err := specialLibrary(opt)
	if err != nil {
		return nil, err
	}
	trial := sim.TrialConfig{
		Library:       lib,
		Scenario:      paperScenario(defaultServers, defaultUsers),
		CapacityBytes: int64(defaultQGB * GB),
		Algorithms: []placement.Algorithm{
			placement.GenAlgorithm{Options: placement.GenOptions{Lazy: true}},
			placement.GenAlgorithm{Options: placement.GenOptions{}},
		},
		Topologies:   opt.Topologies,
		Realizations: opt.Realizations,
		Workers:      opt.Workers,
		Seed:         rng.SaltSeed(opt.Seed, "ablate-lazy"),
	}
	results, err := sim.Run(trial)
	if err != nil {
		return nil, fmt.Errorf("experiments: ablate-lazy: %w", err)
	}
	hit := stats.Series{Label: "hit ratio"}
	secs := stats.Series{Label: "time (s)"}
	labels := []string{"lazy", "naive"}
	notes := make([]string, 0, 3)
	for a, r := range results {
		hit.Append(float64(a+1), r.HitRatio)
		secs.Append(float64(a+1), r.PlaceSeconds)
		notes = append(notes, fmt.Sprintf("variant %d = %s greedy", a+1, labels[a]))
	}
	if results[0].PlaceSeconds.Mean > 0 {
		notes = append(notes, fmt.Sprintf("lazy speedup: %.1fx",
			results[1].PlaceSeconds.Mean/results[0].PlaceSeconds.Mean))
	}
	return &stats.Table{
		Title:   "Ablation: lazy vs naive greedy (TrimCaching Gen)",
		XLabel:  "variant#",
		YLabel:  "hit ratio / time",
		Series:  []stats.Series{hit, secs},
		Notes:   notes,
		Decimal: 6,
	}, nil
}
