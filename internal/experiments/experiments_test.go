package experiments

import (
	"strings"
	"testing"
)

// tinyOptions returns the smallest options that still exercise the full
// pipeline, keeping the test suite fast.
func tinyOptions() Options {
	opt := DefaultOptions()
	opt.Topologies = 3
	opt.Realizations = 15
	opt.LibraryPoolPerFamily = 20
	return opt
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	muts := []func(*Options){
		func(o *Options) { o.Topologies = 0 },
		func(o *Options) { o.Realizations = 0 },
		func(o *Options) { o.Epsilon = -1 },
		func(o *Options) { o.Epsilon = 2 },
		func(o *Options) { o.LibraryModels = 0 },
		func(o *Options) { o.LibraryPoolPerFamily = 0 },
	}
	for i, mut := range muts {
		o := DefaultOptions()
		mut(&o)
		if err := o.Validate(); err == nil {
			t.Fatalf("mutation %d: expected error", i)
		}
	}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) < 10 {
		t.Fatalf("only %d experiments registered", len(all))
	}
	seen := map[string]bool{}
	for _, r := range all {
		if r.Name == "" || r.Description == "" || r.Run == nil {
			t.Fatalf("incomplete runner %+v", r)
		}
		if seen[r.Name] {
			t.Fatalf("duplicate runner %q", r.Name)
		}
		seen[r.Name] = true
	}
	for _, want := range []string{"fig1", "fig4a", "fig4b", "fig4c", "fig5a", "fig5b", "fig5c", "fig6a", "fig6b", "fig7"} {
		if !seen[want] {
			t.Fatalf("missing experiment %q", want)
		}
	}
	if _, err := ByName("fig4a"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestFig4aShape(t *testing.T) {
	tbl, err := Fig4a(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Series) != 4 {
		t.Fatalf("%d series", len(tbl.Series))
	}
	byName := map[string]int{}
	for a, s := range tbl.Series {
		byName[s.Label] = a
		if len(s.X) != len(capacitySweepGB) {
			t.Fatalf("%s has %d points", s.Label, len(s.X))
		}
	}
	spec := tbl.Series[byName["TrimCaching Spec"]]
	ind := tbl.Series[byName["Independent Caching"]]
	pop := tbl.Series[byName["Popularity Caching"]]
	// Paper shape: TrimCaching dominates the baselines at every capacity,
	// and hit ratio grows from the smallest to the largest capacity.
	for pi := range spec.Points {
		if spec.Points[pi].Mean < ind.Points[pi].Mean-0.02 {
			t.Fatalf("Q=%v: Spec %v below Independent %v", spec.X[pi],
				spec.Points[pi].Mean, ind.Points[pi].Mean)
		}
		if ind.Points[pi].Mean < pop.Points[pi].Mean-0.02 {
			t.Fatalf("Q=%v: Independent %v below Popularity %v", spec.X[pi],
				ind.Points[pi].Mean, pop.Points[pi].Mean)
		}
	}
	last := len(spec.Points) - 1
	if spec.Points[last].Mean <= spec.Points[0].Mean {
		t.Fatalf("hit ratio not increasing in Q: %v -> %v",
			spec.Points[0].Mean, spec.Points[last].Mean)
	}
	if out := tbl.Render(); !strings.Contains(out, "Q (GB)") {
		t.Fatal("render missing x label")
	}
}

func TestFig4cDecreasingInUsers(t *testing.T) {
	opt := tinyOptions()
	tbl, err := Fig4c(opt)
	if err != nil {
		t.Fatal(err)
	}
	spec := tbl.Series[0]
	first, last := spec.Points[0].Mean, spec.Points[len(spec.Points)-1].Mean
	// Paper: more users share the spectrum, so the hit ratio declines.
	if last >= first {
		t.Fatalf("hit ratio not decreasing in K: K=10 %v vs K=50 %v", first, last)
	}
}

func TestFig5aShape(t *testing.T) {
	tbl, err := Fig5a(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Series) != 3 {
		t.Fatalf("%d series", len(tbl.Series))
	}
	gen := tbl.Series[0]
	ind := tbl.Series[1]
	if gen.Label != "TrimCaching Gen" || ind.Label != "Independent Caching" {
		t.Fatalf("unexpected series: %v / %v", gen.Label, ind.Label)
	}
	var genSum, indSum float64
	for pi := range gen.Points {
		genSum += gen.Points[pi].Mean
		indSum += ind.Points[pi].Mean
	}
	if genSum <= indSum {
		t.Fatalf("general case: Gen total %v not above Independent %v", genSum, indSum)
	}
}

func TestFig6aOrdering(t *testing.T) {
	opt := tinyOptions()
	tbl, err := Fig6a(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Series) != 2 {
		t.Fatalf("%d series", len(tbl.Series))
	}
	times := tbl.Series[1]
	// Runtime ordering: Gen < Spec < exhaustive.
	if !(times.Points[0].Mean < times.Points[1].Mean && times.Points[1].Mean < times.Points[2].Mean) {
		t.Fatalf("runtime ordering violated: %v", times.Points)
	}
	hits := tbl.Series[0]
	// The optimum bounds both heuristics under the average channel, but
	// fading evaluation adds noise; allow small slack.
	for a := 0; a < 2; a++ {
		if hits.Points[a].Mean > hits.Points[2].Mean+0.05 {
			t.Fatalf("heuristic %d hit %v above optimal %v", a, hits.Points[a].Mean, hits.Points[2].Mean)
		}
	}
}

func TestFig6bGenMuchFaster(t *testing.T) {
	opt := tinyOptions()
	tbl, err := Fig6b(opt)
	if err != nil {
		t.Fatal(err)
	}
	times := tbl.Series[1]
	genTime, specTime := times.Points[0].Mean, times.Points[1].Mean
	// The paper reports Gen ~3,900x faster in the general case; require at
	// least two orders of magnitude.
	if specTime < 100*genTime {
		t.Fatalf("general case: Spec %vs only %.0fx slower than Gen %vs",
			specTime, specTime/genTime, genTime)
	}
	hits := tbl.Series[0]
	if diff := hits.Points[0].Mean - hits.Points[1].Mean; diff > 0.1 || diff < -0.1 {
		t.Fatalf("Gen and Spec hit ratios far apart: %v", hits.Points)
	}
}

func TestFig7Robustness(t *testing.T) {
	opt := tinyOptions()
	tbl, err := Fig7(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Series) != 2 {
		t.Fatalf("%d series", len(tbl.Series))
	}
	for _, s := range tbl.Series {
		if len(s.X) != 13 {
			t.Fatalf("%s has %d checkpoints, want 13", s.Label, len(s.X))
		}
		if s.X[0] != 0 || s.X[12] != 120 {
			t.Fatalf("checkpoint axis wrong: %v", s.X)
		}
		first := s.Points[0].Mean
		for pi, pt := range s.Points {
			// Placement stays useful: no checkpoint collapses to zero and
			// degradation never exceeds half the initial ratio.
			if pt.Mean < first*0.5 {
				t.Fatalf("%s: hit ratio collapsed at checkpoint %d: %v -> %v",
					s.Label, pi, first, pt.Mean)
			}
		}
	}
}

func TestFig1Shape(t *testing.T) {
	tbl, err := Fig1(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Series) != 2 {
		t.Fatalf("%d series", len(tbl.Series))
	}
	for _, s := range tbl.Series {
		first := s.Points[0].Mean
		last := s.Points[len(s.Points)-1].Mean
		if first < 0.9 {
			t.Fatalf("%s: base accuracy %v implausible", s.Label, first)
		}
		deg := first - last
		if deg < 0.02 || deg > 0.12 {
			t.Fatalf("%s: total degradation %v outside the paper's band", s.Label, deg)
		}
	}
}

func TestAblationEpsilonRuns(t *testing.T) {
	tbl, err := AblationEpsilon(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Series) != 2 || len(tbl.Series[0].X) != 5 {
		t.Fatalf("unexpected shape: %d series", len(tbl.Series))
	}
}

func TestAblationZipfRuns(t *testing.T) {
	tbl, err := AblationZipf(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Series) != 2 {
		t.Fatalf("%d series", len(tbl.Series))
	}
}

func TestAblationSharingGainGrowsWithSharing(t *testing.T) {
	opt := tinyOptions()
	tbl, err := AblationSharing(opt)
	if err != nil {
		t.Fatal(err)
	}
	gen, ind := tbl.Series[0], tbl.Series[1]
	// The TrimCaching advantage at the paper's sharing level must exceed
	// the advantage at the lowest sharing level.
	firstGain := gen.Points[0].Mean - ind.Points[0].Mean
	lastGain := gen.Points[len(gen.Points)-1].Mean - ind.Points[len(ind.Points)-1].Mean
	if lastGain < firstGain-0.03 {
		t.Fatalf("sharing gain shrank: %v -> %v", firstGain, lastGain)
	}
	// X axis must be increasing shared fraction.
	for pi := 1; pi < len(gen.X); pi++ {
		if gen.X[pi] <= gen.X[pi-1] {
			t.Fatalf("shared fraction not increasing: %v", gen.X)
		}
	}
}

func TestAblationLazyMatchesAndFaster(t *testing.T) {
	tbl, err := AblationLazy(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	hits, times := tbl.Series[0], tbl.Series[1]
	if diff := hits.Points[0].Mean - hits.Points[1].Mean; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("lazy and naive hit ratios differ: %v", hits.Points)
	}
	if times.Points[0].Mean >= times.Points[1].Mean {
		t.Fatalf("lazy %v not faster than naive %v", times.Points[0].Mean, times.Points[1].Mean)
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	opt := tinyOptions()
	a, err := Fig4b(opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig4b(opt)
	if err != nil {
		t.Fatal(err)
	}
	for si := range a.Series {
		for pi := range a.Series[si].Points {
			if a.Series[si].Points[pi].Mean != b.Series[si].Points[pi].Mean {
				t.Fatal("same options produced different results")
			}
		}
	}
}
