package experiments

import "testing"

func TestAblationLayoutShape(t *testing.T) {
	tbl, err := AblationLayout(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Series) != 2 || len(tbl.Series[0].X) != 3 {
		t.Fatal("unexpected shape")
	}
}

func TestServeLoadShape(t *testing.T) {
	tbl, err := ServeLoad(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Series) != 3 || len(tbl.Series[0].X) != 5 {
		t.Fatal("unexpected shape")
	}
	gen := tbl.Series[0]
	// QoS hit ratio must degrade from the lightest to the heaviest load.
	if gen.Points[len(gen.Points)-1].Mean >= gen.Points[0].Mean {
		t.Fatalf("no contention effect: %v -> %v",
			gen.Points[0].Mean, gen.Points[len(gen.Points)-1].Mean)
	}
	// TrimCaching Gen must dominate Popularity under load.
	pop := tbl.Series[2]
	var genSum, popSum float64
	for pi := range gen.Points {
		genSum += gen.Points[pi].Mean
		popSum += pop.Points[pi].Mean
	}
	if genSum <= popSum {
		t.Fatalf("Gen total %v not above Popularity %v", genSum, popSum)
	}
}
