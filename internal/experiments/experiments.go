// Package experiments contains one driver per table/figure in the paper's
// evaluation (§VII), each regenerating the corresponding rows/series:
//
//	Fig. 1   — accuracy vs frozen bottom layers (motivating figure)
//	Fig. 4   — special case: hit ratio vs Q / M / K (Spec, Gen, Independent)
//	Fig. 5   — general case: hit ratio vs Q / M / K (Gen, Independent)
//	Fig. 6   — hit ratio and running time vs the exhaustive optimum
//	Fig. 7   — hit ratio over 2 h of user mobility
//
// plus ablations that probe the design choices (ε, Zipf skew, shared
// fraction, lazy vs naive greedy). Absolute numbers need not match the
// paper's testbed, but the shape — who wins, by what factor, where the
// crossovers fall — is the reproduction target (see EXPERIMENTS.md).
package experiments

import (
	"fmt"
	"sort"

	"trimcaching/internal/libgen"
	"trimcaching/internal/modellib"
	"trimcaching/internal/placement"
	"trimcaching/internal/rng"
	"trimcaching/internal/scenario"
	"trimcaching/internal/stats"
	"trimcaching/internal/topology"
	"trimcaching/internal/wireless"
	"trimcaching/internal/workload"
)

// GB is the paper's storage unit.
const GB = 1_000_000_000

// Options control experiment fidelity. The paper uses 100 topologies and
// >10^3 fading realizations; defaults are scaled down so the full suite
// runs in minutes, and the CLI exposes flags to match the paper exactly.
type Options struct {
	// Topologies is the number of random deployments per point.
	Topologies int
	// Realizations is the number of Rayleigh fading realizations per
	// topology.
	Realizations int
	// Workers bounds trial parallelism (0 = GOMAXPROCS).
	Workers int
	// Seed makes every experiment reproducible.
	Seed uint64
	// Epsilon is the TrimCaching Spec rounding parameter (paper: 0.1).
	Epsilon float64
	// LibraryModels is I, the number of models placed (paper figures: 30).
	LibraryModels int
	// LibraryPoolPerFamily is the per-family size of the generated pool the
	// experiment library is drawn from (paper: 100 per family, 300 total).
	LibraryPoolPerFamily int
}

// DefaultOptions returns fast-but-faithful settings.
func DefaultOptions() Options {
	return Options{
		Topologies:           20,
		Realizations:         200,
		Seed:                 1,
		Epsilon:              0.1,
		LibraryModels:        30,
		LibraryPoolPerFamily: 100,
	}
}

// Validate reports the first invalid option, if any.
func (o Options) Validate() error {
	if o.Topologies <= 0 || o.Realizations <= 0 {
		return fmt.Errorf("experiments: Topologies and Realizations must be positive")
	}
	if o.Epsilon < 0 || o.Epsilon > 1 {
		return fmt.Errorf("experiments: Epsilon must be in [0,1], got %v", o.Epsilon)
	}
	if o.LibraryModels <= 0 || o.LibraryPoolPerFamily <= 0 {
		return fmt.Errorf("experiments: library sizes must be positive")
	}
	return nil
}

// specialLibrary draws the I-model experiment library from a 3-family
// special-case pool (§VII-A).
func specialLibrary(opt Options) (*modellib.Library, error) {
	pool, err := libgen.GenerateSpecial(libgen.DefaultSpecialConfig(opt.LibraryPoolPerFamily), rng.New(opt.Seed).Split("special-pool"))
	if err != nil {
		return nil, fmt.Errorf("experiments: special pool: %w", err)
	}
	return libgen.TakeStratified(pool, opt.LibraryModels, rng.New(opt.Seed).Split("special-take"))
}

// generalLibrary draws the I-model experiment library from the two-round
// Table I pool (§VII-A).
func generalLibrary(opt Options, models int) (*modellib.Library, error) {
	pool, err := libgen.GenerateGeneral(libgen.DefaultGeneralConfig(), rng.New(opt.Seed).Split("general-pool"))
	if err != nil {
		return nil, fmt.Errorf("experiments: general pool: %w", err)
	}
	return libgen.TakeStratified(pool, models, rng.New(opt.Seed).Split("general-take"))
}

// effectiveBackhaulBps is the per-transfer edge-to-edge throughput used by
// the experiments. The paper quotes a 10 Gb/s backhaul link (§VII-A), but a
// link is shared by all concurrent model migrations and backhaul traffic;
// with an order of ten concurrent transfers the per-migration share is
// ~1 Gb/s. Without this contention factor the relay path (eq. 5) costs only
// tens of milliseconds over a direct hit, one cached copy anywhere serves
// the whole network, and per-server storage never binds — which contradicts
// every capacity-sensitive curve in Figs. 4–5. See EXPERIMENTS.md.
const effectiveBackhaulBps = 1e9

// paperScenario returns the §VII-A deployment distribution.
func paperScenario(numServers, numUsers int) scenario.GenConfig {
	w := wireless.DefaultConfig()
	w.BackhaulBps = effectiveBackhaulBps
	return scenario.GenConfig{
		Topology: topology.Config{
			AreaSideM:       1000,
			NumServers:      numServers,
			NumUsers:        numUsers,
			CoverageRadiusM: w.CoverageRadiusM,
		},
		Wireless: w,
		Workload: workload.DefaultConfig(),
	}
}

// specAlgorithm builds TrimCaching Spec with the configured ε.
func specAlgorithm(opt Options) placement.Algorithm {
	return placement.SpecAlgorithm{Options: placement.SpecOptions{Epsilon: opt.Epsilon, MaxCombos: 1 << 20}}
}

// genAlgorithm builds TrimCaching Gen (lazy evaluation).
func genAlgorithm() placement.Algorithm {
	return placement.GenAlgorithm{Options: placement.GenOptions{Lazy: true}}
}

// Runner is an experiment entry point keyed by its CLI name.
type Runner struct {
	// Name is the CLI verb, e.g. "fig4a".
	Name string
	// Description is a one-line summary shown by `trimcaching list`.
	Description string
	// Run executes the experiment.
	Run func(Options) (*stats.Table, error)
}

// All returns every experiment runner, sorted by name.
func All() []Runner {
	rs := []Runner{
		{Name: "fig1", Description: "accuracy vs frozen bottom layers (substituted fine-tuning model)", Run: Fig1},
		{Name: "fig4a", Description: "special case: cache hit ratio vs storage capacity Q", Run: Fig4a},
		{Name: "fig4b", Description: "special case: cache hit ratio vs number of edge servers M", Run: Fig4b},
		{Name: "fig4c", Description: "special case: cache hit ratio vs number of users K", Run: Fig4c},
		{Name: "fig5a", Description: "general case: cache hit ratio vs storage capacity Q", Run: Fig5a},
		{Name: "fig5b", Description: "general case: cache hit ratio vs number of edge servers M", Run: Fig5b},
		{Name: "fig5c", Description: "general case: cache hit ratio vs number of users K", Run: Fig5c},
		{Name: "fig6a", Description: "special case: hit ratio and runtime vs exhaustive optimum", Run: Fig6a},
		{Name: "fig6b", Description: "general case: Spec vs Gen hit ratio and runtime", Run: Fig6b},
		{Name: "fig7", Description: "cache hit ratio over 2 h of user mobility", Run: Fig7},
		{Name: "ablate-epsilon", Description: "ablation: Spec quality/runtime vs rounding epsilon", Run: AblationEpsilon},
		{Name: "ablate-zipf", Description: "ablation: TrimCaching gain vs request skew", Run: AblationZipf},
		{Name: "ablate-sharing", Description: "ablation: TrimCaching gain vs shared-parameter fraction", Run: AblationSharing},
		{Name: "ablate-lazy", Description: "ablation: lazy vs naive greedy runtime", Run: AblationLazy},
		{Name: "ablate-ratio", Description: "ablation: greedy variants (gain vs gain/cost vs +refine)", Run: AblationRatio},
		{Name: "fig7-replace", Description: "extension: frozen placement vs threshold replacement under mobility", Run: Fig7Replace},
		{Name: "ablate-deadline", Description: "ablation: hit ratio vs QoS deadline scale", Run: AblationDeadline},
		{Name: "ablate-shadowing", Description: "ablation: hit ratio vs log-normal shadowing", Run: AblationShadowing},
		{Name: "ablate-hetero", Description: "ablation: hit ratio vs capacity heterogeneity", Run: AblationHetero},
		{Name: "ablate-layout", Description: "ablation: hit ratio vs server deployment layout", Run: AblationLayout},
		{Name: "serve-load", Description: "extension: event-driven QoS hit ratio vs request load", Run: ServeLoad},
	}
	sort.Slice(rs, func(a, b int) bool { return rs[a].Name < rs[b].Name })
	return rs
}

// ByName returns the runner with the given name.
func ByName(name string) (Runner, error) {
	for _, r := range All() {
		if r.Name == name {
			return r, nil
		}
	}
	return Runner{}, fmt.Errorf("experiments: unknown experiment %q", name)
}
