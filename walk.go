package trimcaching

import (
	"fmt"

	"trimcaching/internal/mobility"
	"trimcaching/internal/placement"
	"trimcaching/internal/rng"
	"trimcaching/internal/scenario"
)

// Walk evolves a scenario's users over time with the paper's mobility model
// (§VII-E): pedestrians, bikes, and vehicles updating speed and heading
// every slot and bouncing off the deployment-area boundary. Placements are
// decided once on the initial scenario and re-evaluated as users move.
type Walk struct {
	base *Scenario
	pop  *mobility.Population
	src  *rng.Source
}

// StartWalk creates a mobility process from the scenario's current user
// positions. Deterministic in seed.
func (s *Scenario) StartWalk(seed uint64) (*Walk, error) {
	src := rng.New(seed)
	topo := s.instance.Topology()
	pop, err := mobility.NewPopulation(topo.Area(), topo.UserPositions(), src.Split("init"))
	if err != nil {
		return nil, fmt.Errorf("trimcaching: %w", err)
	}
	return &Walk{base: s, pop: pop, src: src.Split("steps")}, nil
}

// Advance walks every user forward by seconds, in the paper's 5-second
// slots (a trailing partial slot is walked at its actual length).
func (w *Walk) Advance(seconds float64) error {
	const slotS = 5
	for seconds > 0 {
		dt := float64(slotS)
		if seconds < dt {
			dt = seconds
		}
		if err := w.pop.Step(dt, w.src); err != nil {
			return fmt.Errorf("trimcaching: %w", err)
		}
		seconds -= dt
	}
	return nil
}

// Scenario rebuilds a scenario snapshot at the walkers' current positions:
// same servers, library, workload, and storage budget; new associations and
// rates.
func (w *Walk) Scenario() (*Scenario, error) {
	topo, err := w.base.instance.Topology().WithUserPositions(w.pop.Positions())
	if err != nil {
		return nil, fmt.Errorf("trimcaching: %w", err)
	}
	ins, err := scenario.New(topo, w.base.instance.Library(), w.base.instance.Workload(), w.base.instance.Wireless())
	if err != nil {
		return nil, fmt.Errorf("trimcaching: %w", err)
	}
	eval, err := placement.NewEvaluator(ins)
	if err != nil {
		return nil, fmt.Errorf("trimcaching: %w", err)
	}
	caps := make([]int64, len(w.base.caps))
	copy(caps, w.base.caps)
	return &Scenario{instance: ins, evaluator: eval, caps: caps}, nil
}
