package trimcaching

import "testing"

// TestRunDynamicsShards pins the public sharded surface: Shards = 1 keeps
// the default single-engine path (identical timeline to Shards = 0), a
// multi-cell run produces a sane timeline, and the unsupported
// trace-measurement combination errors.
func TestRunDynamicsShards(t *testing.T) {
	lib, err := NewSpecialLibrary(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultScenarioConfig()
	cfg.Users = 24
	sc, err := BuildScenario(lib, cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	dyn := DefaultDynamicsConfig()
	dyn.DurationMin, dyn.Realizations = 30, 20

	base, baseRep, err := sc.RunDynamics(dyn, 42)
	if err != nil {
		t.Fatal(err)
	}
	dyn.Shards = 1
	one, oneRep, err := sc.RunDynamics(dyn, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != len(base) || oneRep != baseRep {
		t.Fatalf("Shards=1 shape (%d steps, %d rep) vs default (%d, %d)", len(one), oneRep, len(base), baseRep)
	}
	for i := range base {
		if one[i].HitRatio != base[i].HitRatio || one[i].Replaced != base[i].Replaced {
			t.Errorf("step %d: Shards=1 %v/%v, default %v/%v",
				i, one[i].HitRatio, one[i].Replaced, base[i].HitRatio, base[i].Replaced)
		}
	}

	dyn.Shards = 2
	multi, _, err := sc.RunDynamics(dyn, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(multi) != len(base) {
		t.Fatalf("sharded timeline has %d steps, want %d", len(multi), len(base))
	}
	for i, s := range multi {
		if !(s.HitRatio >= 0 && s.HitRatio <= 1) {
			t.Errorf("step %d: aggregate hit ratio %v outside [0,1]", i, s.HitRatio)
		}
	}

	dyn.Measurement = "trace"
	if _, _, err := sc.RunDynamics(dyn, 42); err == nil {
		t.Error("trace measurement with Shards>1 accepted")
	}
}
