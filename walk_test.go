package trimcaching

import (
	"testing"
)

func TestWalkFlow(t *testing.T) {
	lib, err := NewSpecialLibrary(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := BuildScenario(lib, DefaultScenarioConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := sc.Place("gen")
	if err != nil {
		t.Fatal(err)
	}
	walk, err := sc.StartWalk(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := walk.Advance(600); err != nil {
		t.Fatal(err)
	}
	next, err := walk.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if next.Servers() != sc.Servers() || next.Users() != sc.Users() || next.Models() != sc.Models() {
		t.Fatal("walk snapshot changed dimensions")
	}
	// The original placement must still evaluate on the moved scenario.
	hr, err := next.HitRatio(p)
	if err != nil {
		t.Fatal(err)
	}
	if hr < 0 || hr > 1 {
		t.Fatalf("hit ratio %v", hr)
	}
}

func TestWalkMovesUsers(t *testing.T) {
	lib, err := NewSpecialLibrary(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := BuildScenario(lib, DefaultScenarioConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	walk, err := sc.StartWalk(5)
	if err != nil {
		t.Fatal(err)
	}
	before := sc.instance.Topology().UserPositions()
	if err := walk.Advance(300); err != nil {
		t.Fatal(err)
	}
	next, err := walk.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	after := next.instance.Topology().UserPositions()
	moved := 0
	for i := range before {
		if before[i].Dist(after[i]) > 1 {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no users moved after 5 minutes")
	}
}

func TestWalkAdvancePartialSlot(t *testing.T) {
	lib, err := NewSpecialLibrary(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := BuildScenario(lib, DefaultScenarioConfig(), 6)
	if err != nil {
		t.Fatal(err)
	}
	walk, err := sc.StartWalk(7)
	if err != nil {
		t.Fatal(err)
	}
	// 7 seconds: one full slot plus a 2-second partial slot.
	if err := walk.Advance(7); err != nil {
		t.Fatal(err)
	}
	if _, err := walk.Scenario(); err != nil {
		t.Fatal(err)
	}
}

func TestWalkDeterministic(t *testing.T) {
	lib, err := NewSpecialLibrary(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	positionsAfter := func() []float64 {
		sc, err := BuildScenario(lib, DefaultScenarioConfig(), 8)
		if err != nil {
			t.Fatal(err)
		}
		walk, err := sc.StartWalk(9)
		if err != nil {
			t.Fatal(err)
		}
		if err := walk.Advance(120); err != nil {
			t.Fatal(err)
		}
		next, err := walk.Scenario()
		if err != nil {
			t.Fatal(err)
		}
		var out []float64
		for _, p := range next.instance.Topology().UserPositions() {
			out = append(out, p.X, p.Y)
		}
		return out
	}
	a := positionsAfter()
	b := positionsAfter()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seeds, different walks")
		}
	}
}
