module trimcaching

go 1.24
