// Package trimcaching is the public API of the TrimCaching reproduction:
// parameter-sharing AI model caching in wireless edge networks (ICDCS 2024).
//
// AI models fine-tuned from shared backbones (layer freezing, LoRA) share
// parameter blocks; an edge server caching several such models only needs
// each shared block once. TrimCaching places models on edge servers to
// maximize the cache hit ratio — the fraction of model-download requests
// served within their latency QoS — under per-server storage budgets that
// account for this deduplication.
//
// Typical flow:
//
//	lib, _ := trimcaching.NewSpecialLibrary(10, 1)      // 30 ResNet models
//	sc, _ := trimcaching.BuildScenario(lib, trimcaching.DefaultScenarioConfig(), 1)
//	p, _, _ := sc.Place("spec")                          // TrimCaching Spec
//	hr, _ := sc.HitRatio(p)                              // eq. (2)
//	faded, _ := sc.HitRatioUnderFading(p, 1000, 7)       // §VII-A evaluation
//
// # Dynamic scenarios
//
// The paper's §IV/§VII-E story is dynamic: users move, the hit ratio
// degrades, and placement is re-initiated only when degradation crosses a
// threshold. Scenario.RunDynamics drives that whole timeline — walk,
// per-checkpoint measurement under fading, threshold-triggered
// replacement — on the incremental dynamics engine, which updates the
// problem instance in place (delta reachability updates, warm-start
// placement repair) instead of rebuilding it each checkpoint:
//
//	steps, replacements, _ := sc.RunDynamics(trimcaching.DynamicsConfig{
//		Algorithm: "gen", DurationMin: 120, CheckpointMin: 10,
//		Realizations: 400, ReplaceThreshold: 0.1,
//	}, 7)
//
// Incremental updates are pinned bit-identical to full rebuilds, so the
// timeline is exactly what the rebuild path would produce, only faster.
// StartWalk remains for callers that want to drive mobility by hand.
//
// The internal packages hold the substrates (wireless channel, topology,
// workload, placement algorithms, Monte-Carlo harness); this package wires
// them together behind a small, stable surface. The experiment drivers that
// regenerate every figure of the paper live in internal/experiments and are
// exposed through cmd/trimcaching.
package trimcaching

import (
	"fmt"
	"time"

	"trimcaching/internal/cachesim"
	"trimcaching/internal/libgen"
	"trimcaching/internal/modellib"
	"trimcaching/internal/placement"
	"trimcaching/internal/rng"
	"trimcaching/internal/scenario"
	"trimcaching/internal/sim"
	"trimcaching/internal/topology"
	"trimcaching/internal/wireless"
	"trimcaching/internal/workload"
)

// Re-exported core types. The underlying packages document the details.
type (
	// Library is a parameter-sharing model library (§III-B).
	Library = modellib.Library
	// Placement is a model placement decision X (§IV).
	Placement = placement.Placement
	// Algorithm is a named placement solver.
	Algorithm = placement.Algorithm
	// ServeConfig parameterizes the request-level serving simulator.
	ServeConfig = cachesim.Config
	// ServeResult summarizes a serving run.
	ServeResult = cachesim.Result
)

// NewSpecialLibrary builds the paper's special-case library: ResNet-18/34/50
// backbones, modelsPerFamily fine-tuned downstream models each, with frozen
// bottom layers as shared blocks (§VII-A).
func NewSpecialLibrary(modelsPerFamily int, seed uint64) (*Library, error) {
	return libgen.GenerateSpecial(libgen.DefaultSpecialConfig(modelsPerFamily), rng.New(seed))
}

// NewGeneralLibrary builds the paper's general-case library via two-round
// fine-tuning per Table I (§VII-A), then samples it down to numModels.
func NewGeneralLibrary(numModels int, seed uint64) (*Library, error) {
	pool, err := libgen.GenerateGeneral(libgen.DefaultGeneralConfig(), rng.New(seed))
	if err != nil {
		return nil, err
	}
	return libgen.TakeStratified(pool, numModels, rng.New(seed).Split("take"))
}

// NewLoRALibrary builds an LLM-style library: one foundation model shared by
// numAdapters LoRA-tuned downstream models (the >99% sharing regime of §I).
func NewLoRALibrary(numAdapters int) (*Library, error) {
	return libgen.GenerateLoRA(libgen.DefaultLoRAConfig(numAdapters))
}

// ScenarioConfig describes a wireless edge deployment to sample.
type ScenarioConfig struct {
	// Servers is M, the number of edge servers.
	Servers int
	// Users is K, the number of users.
	Users int
	// AreaSideM is the square deployment area side in metres.
	AreaSideM float64
	// CapacityBytes is the per-server storage budget Q.
	CapacityBytes int64
	// ZipfExponent skews request popularity.
	ZipfExponent float64
	// PerUserPopularity gives every user an independent popularity ranking
	// instead of the shared global one.
	PerUserPopularity bool
	// BackhaulBps is the effective edge-to-edge transfer rate for relayed
	// downloads (eq. 5).
	BackhaulBps float64
	// DeadlineMinS/DeadlineMaxS bound the per-request E2E latency QoS
	// (0 keeps the paper's [0.5, 1] s CNN regime; LLM downloads need
	// minutes).
	DeadlineMinS float64
	DeadlineMaxS float64
	// InferMinS/InferMaxS bound the on-device inference latency
	// (0 keeps the defaults).
	InferMinS float64
	InferMaxS float64

	// Explicit has-value flags. A zero value in the fields above normally
	// means "keep the default"; setting the matching flag applies the field
	// even when it is zero, making uniform popularity (Zipf exponent 0) and
	// zero-minimum deadline/inference windows expressible. Existing callers
	// that leave the flags false keep the old behavior.
	ZipfExponentSet bool
	DeadlineMinSSet bool
	DeadlineMaxSSet bool
	InferMinSSet    bool
	InferMaxSSet    bool
}

// DefaultScenarioConfig mirrors the paper's main setting: M = 10, K = 30,
// 1 km² area, Q = 1 GB, Zipf 0.8, 1 Gb/s effective backhaul.
func DefaultScenarioConfig() ScenarioConfig {
	return ScenarioConfig{
		Servers:       10,
		Users:         30,
		AreaSideM:     1000,
		CapacityBytes: 1_000_000_000,
		ZipfExponent:  0.8,
		BackhaulBps:   1e9,
	}
}

// Scenario is a sampled problem instance plus its evaluator and storage
// budget — everything needed to place and evaluate.
type Scenario struct {
	instance  *scenario.Instance
	evaluator *placement.Evaluator
	caps      []int64
}

// BuildScenario samples a topology and workload for the library and wires up
// the evaluator. Deterministic in seed.
func BuildScenario(lib *Library, cfg ScenarioConfig, seed uint64) (*Scenario, error) {
	if lib == nil {
		return nil, fmt.Errorf("trimcaching: library is required")
	}
	if cfg.CapacityBytes < 0 {
		return nil, fmt.Errorf("trimcaching: negative capacity %d", cfg.CapacityBytes)
	}
	w := wireless.DefaultConfig()
	if cfg.BackhaulBps > 0 {
		w.BackhaulBps = cfg.BackhaulBps
	}
	wl := workload.DefaultConfig()
	if cfg.ZipfExponentSet || cfg.ZipfExponent > 0 {
		wl.ZipfExponent = cfg.ZipfExponent
	}
	wl.PerUserPermutation = cfg.PerUserPopularity
	if cfg.DeadlineMinSSet || cfg.DeadlineMinS > 0 {
		wl.DeadlineMinS = cfg.DeadlineMinS
	}
	if cfg.DeadlineMaxSSet || cfg.DeadlineMaxS > 0 {
		wl.DeadlineMaxS = cfg.DeadlineMaxS
	}
	if cfg.InferMinSSet || cfg.InferMinS > 0 {
		wl.InferMinS = cfg.InferMinS
	}
	if cfg.InferMaxSSet || cfg.InferMaxS > 0 {
		wl.InferMaxS = cfg.InferMaxS
	}
	gen := scenario.GenConfig{
		Topology: topology.Config{
			AreaSideM:       cfg.AreaSideM,
			NumServers:      cfg.Servers,
			NumUsers:        cfg.Users,
			CoverageRadiusM: w.CoverageRadiusM,
		},
		Wireless: w,
		Workload: wl,
	}
	ins, err := scenario.Generate(lib, gen, rng.New(seed))
	if err != nil {
		return nil, fmt.Errorf("trimcaching: %w", err)
	}
	eval, err := placement.NewEvaluator(ins)
	if err != nil {
		return nil, fmt.Errorf("trimcaching: %w", err)
	}
	return &Scenario{
		instance:  ins,
		evaluator: eval,
		caps:      placement.UniformCapacities(ins.NumServers(), cfg.CapacityBytes),
	}, nil
}

// Place runs the named algorithm ("spec", "gen", "gen-naive", "independent",
// "popularity", or "optimal") and returns the placement and wall time.
func (s *Scenario) Place(algorithm string) (*Placement, time.Duration, error) {
	alg, err := placement.ByName(algorithm)
	if err != nil {
		return nil, 0, fmt.Errorf("trimcaching: %w", err)
	}
	return s.PlaceWith(alg)
}

// PlaceWith runs the given algorithm and returns the placement and wall
// time. The placement is validated against the storage budget.
func (s *Scenario) PlaceWith(alg Algorithm) (*Placement, time.Duration, error) {
	start := time.Now()
	p, err := alg.Place(s.evaluator, s.caps)
	elapsed := time.Since(start)
	if err != nil {
		return nil, elapsed, fmt.Errorf("trimcaching: %s: %w", alg.Name(), err)
	}
	if err := s.evaluator.CheckFeasible(p, s.caps); err != nil {
		return nil, elapsed, fmt.Errorf("trimcaching: %s produced infeasible placement: %w", alg.Name(), err)
	}
	return p, elapsed, nil
}

// HitRatio evaluates U(X) (eq. 2) under average channel gains.
func (s *Scenario) HitRatio(p *Placement) (float64, error) {
	return s.evaluator.HitRatio(p)
}

// HitRatioUnderFading evaluates the expected hit ratio over Rayleigh fading
// realizations, the paper's evaluation protocol (§VII-A).
func (s *Scenario) HitRatioUnderFading(p *Placement, realizations int, seed uint64) (float64, error) {
	hits, err := sim.EvaluateUnderFading(s.evaluator, []*placement.Placement{p}, realizations, rng.New(seed))
	if err != nil {
		return 0, fmt.Errorf("trimcaching: %w", err)
	}
	return hits[0], nil
}

// ServerStorage returns the deduplicated bytes server m needs under p.
func (s *Scenario) ServerStorage(p *Placement, m int) (int64, error) {
	return s.evaluator.ServerStorage(p, m)
}

// Serve replays a Poisson request trace against the placement and reports
// hit ratios and latency percentiles (extension beyond the paper).
func (s *Scenario) Serve(p *Placement, cfg ServeConfig, seed uint64) (ServeResult, error) {
	return cachesim.Serve(s.instance, p, cfg, rng.New(seed))
}

// DefaultServeConfig returns the serving simulator defaults.
func DefaultServeConfig() ServeConfig { return cachesim.DefaultConfig() }

// Servers returns M.
func (s *Scenario) Servers() int { return s.instance.NumServers() }

// Users returns K.
func (s *Scenario) Users() int { return s.instance.NumUsers() }

// Models returns I.
func (s *Scenario) Models() int { return s.instance.NumModels() }

// AlgorithmByName resolves a placement algorithm by its short name.
func AlgorithmByName(name string) (Algorithm, error) { return placement.ByName(name) }
