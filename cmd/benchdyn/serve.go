package main

// The -serve section: trace-driven serving at BENCH_serve.json dimensions
// (K = 100k users by default) — every checkpoint synthesizes a request
// window (Poisson arrivals per user, Zipf popularity) and serves it through
// the event-driven simulator, so the rows report request-level numbers the
// fading benchmark cannot: requests per second of wall time, the measured
// QoS hit ratio, and exact p50/p95/p99 request latency. The unsharded
// dynamics engine is compared against the sharded engine at 1/2/4/8 cells;
// sharded cells synthesize only their owned users' arrivals (global-user-
// keyed streams, so the window partitions exactly) and the per-cell sorted
// latency buffers are k-way merged for the global quantiles — never
// quantiles-of-quantiles. Per-checkpoint latency is the full serving loop —
// walk, membership plan, instance refresh, synthesis, event-driven serve,
// and any triggered re-placements — with the same warm-up-then-min protocol
// as the shard benchmark. The emitted JSON is schema-validated before it is
// written.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"trimcaching/internal/cachesim"
	"trimcaching/internal/dynamics"
	"trimcaching/internal/rng"
	"trimcaching/internal/shard"
)

// serveRun is one engine configuration's serving measurements.
type serveRun struct {
	// Shards is the cell count; 0 marks the unsharded dynamics engine.
	Shards int `json:"shards"`
	// Workers is the worker-pool bound the row ran with.
	Workers int `json:"workers"`
	// Checkpoints is the timed checkpoint count (after one warm-up).
	Checkpoints int `json:"checkpoints"`
	// CheckpointNs is the fastest timed serving checkpoint's end-to-end
	// wall time (walk + plan + refresh + synthesis + serve + triggers).
	CheckpointNs int64 `json:"checkpoint_ns_per_op"`
	// Requests is the total request count over the timed checkpoints.
	Requests int `json:"requests"`
	// ThroughputRequestsPerS is the timed checkpoints' total request count
	// over their total wall time — the sustained request-level rate of the
	// whole loop, not just the serve kernel.
	ThroughputRequestsPerS float64 `json:"throughput_requests_per_s"`
	// Speedup is the single-core unsharded per-checkpoint time over this
	// run's.
	Speedup float64 `json:"speedup"`
	// HitRatioMean averages the measured QoS hit ratio (aggregated across
	// cells by ΣQoSHits/ΣRequests) over the timed checkpoints.
	HitRatioMean float64 `json:"hit_ratio_mean"`
	// P50/P95/P99LatencyNs are request-weighted means over the timed
	// checkpoints of each window's exact latency quantile. Within a window
	// the quantile is exact even when sharded — per-cell sorted latency
	// buffers are merged before the quantile is read.
	P50LatencyNs int64 `json:"p50_latency_ns"`
	P95LatencyNs int64 `json:"p95_latency_ns"`
	P99LatencyNs int64 `json:"p99_latency_ns"`
	// Handoffs counts cross-cell ownership transfers over the timed
	// checkpoints (0 when unsharded).
	Handoffs int `json:"handoffs"`
}

// serveScenario is the serve report's scenario header.
type serveScenario struct {
	Servers                int     `json:"servers"`
	Users                  int     `json:"users"`
	Models                 int     `json:"models"`
	CheckpointMin          int     `json:"checkpointMin"`
	SlotS                  float64 `json:"slotS"`
	RequestsPerUserPerHour float64 `json:"requestsPerUserPerHour"`
	WindowS                float64 `json:"windowS"`
}

type serveReport struct {
	Scenario serveScenario `json:"scenario"`
	// Unsharded is the single whole-area engine baseline (Workers = 1).
	Unsharded serveRun `json:"unsharded"`
	// Sharded holds one entry per cell count, ascending (Workers = 1).
	Sharded []serveRun `json:"sharded"`
	// Multicore repeats the sweep with Workers = max(2, NumCPU), speedups
	// still against the single-core unsharded baseline.
	Multicore struct {
		Workers   int        `json:"workers"`
		Unsharded serveRun   `json:"unsharded"`
		Sharded   []serveRun `json:"sharded"`
	} `json:"multicore"`
	// Speedup is the headline number: the largest cell count's single-core
	// speedup.
	Speedup           float64 `json:"speedup"`
	SpeedupDefinition string  `json:"speedup_definition"`
}

// serveRunSchema validates one serveRun object.
var serveRunSchema = []fieldSpec{
	{"shards", 0},
	{"workers", 1},
	{"checkpoints", 1},
	{"checkpoint_ns_per_op", 1},
	{"requests", 1},
	{"throughput_requests_per_s", 0.000001},
	{"hit_ratio_mean", 0.000001},
	{"p50_latency_ns", 1},
	{"p95_latency_ns", 1},
	{"p99_latency_ns", 1},
}

var serveTopSchema = []fieldSpec{
	{"scenario.servers", 1},
	{"scenario.users", 1},
	{"scenario.models", 1},
	{"scenario.checkpointMin", 1},
	{"scenario.slotS", 0.000001},
	{"scenario.requestsPerUserPerHour", 0.000001},
	{"scenario.windowS", 1},
	{"multicore.workers", 2},
	{"speedup", 0.000001},
}

// serveStats accumulates one run's timed-checkpoint serving numbers.
type serveStats struct {
	dur      time.Duration // fastest timed checkpoint
	totalDur time.Duration
	requests int
	hitSum   float64
	// Request-weighted quantile sums (quantile * window requests).
	p50Sum, p95Sum, p99Sum float64
}

func (s *serveStats) add(res cachesim.EventResult, d time.Duration, first bool) {
	if first || d < s.dur {
		s.dur = d
	}
	s.totalDur += d
	s.requests += res.Requests
	s.hitSum += res.HitRatio
	w := float64(res.Requests)
	s.p50Sum += float64(res.P50Latency.Nanoseconds()) * w
	s.p95Sum += float64(res.P95Latency.Nanoseconds()) * w
	s.p99Sum += float64(res.P99Latency.Nanoseconds()) * w
}

func (s *serveStats) row(shards, workers, checkpoints int) serveRun {
	run := serveRun{
		Shards:       shards,
		Workers:      workers,
		Checkpoints:  checkpoints,
		CheckpointNs: s.dur.Nanoseconds(),
		Requests:     s.requests,
		HitRatioMean: s.hitSum / float64(checkpoints),
	}
	if s.totalDur > 0 {
		run.ThroughputRequestsPerS = float64(s.requests) / s.totalDur.Seconds()
	}
	if s.requests > 0 {
		w := float64(s.requests)
		run.P50LatencyNs = int64(s.p50Sum / w)
		run.P95LatencyNs = int64(s.p95Sum / w)
		run.P99LatencyNs = int64(s.p99Sum / w)
	}
	return run
}

// serveSweep runs the unsharded trace-driven baseline and one sharded
// engine per cell count, all with the given worker-pool bound. baseNs is
// the reference per-checkpoint time every speedup divides; 0 means use this
// sweep's own unsharded time.
func serveSweep(stdout io.Writer, scen *serveScenario, users, servers, models int, rate float64, checkpoints, workers int, counts []int, baseNs int64) (serveRun, []serveRun, error) {
	base, err := shard.NewBenchConfig(users, servers, models, 1)
	if err != nil {
		return serveRun{}, nil, err
	}
	windowS := float64(base.CheckpointMin) * 60
	if scen != nil {
		scen.Servers = servers
		scen.Users = users
		scen.Models = models
		scen.CheckpointMin = base.CheckpointMin
		scen.SlotS = base.SlotS
		scen.RequestsPerUserPerHour = rate
		scen.WindowS = windowS
	}
	eng, err := dynamics.NewEngine(dynamics.Config{
		Instance:      base.Instance,
		Capacities:    base.Capacities,
		Tracks:        base.Tracks,
		DurationMin:   base.DurationMin,
		CheckpointMin: base.CheckpointMin,
		SlotS:         base.SlotS,
		Realizations:  base.Realizations,
		Workers:       workers,
		Mode:          dynamics.Incremental,
		Measurement:   &dynamics.TraceMeasurement{RequestsPerUserPerHour: rate, WindowS: windowS},
	}, rng.New(1))
	if err != nil {
		return serveRun{}, nil, err
	}
	tm := eng.TraceMeasurement()
	unshardedStep := func(cp int) (cachesim.EventResult, error) {
		if err := eng.Advance(); err != nil {
			return cachesim.EventResult{}, err
		}
		if err := eng.Refresh(); err != nil {
			return cachesim.EventResult{}, err
		}
		if _, err := eng.Step(cp); err != nil {
			return cachesim.EventResult{}, err
		}
		return tm.LastResults()[0], nil
	}
	if _, err := unshardedStep(1); err != nil { // warm-up: flip index build
		return serveRun{}, nil, err
	}
	var us serveStats
	for cp := 2; cp <= checkpoints+1; cp++ {
		start := time.Now()
		res, err := unshardedStep(cp)
		if err != nil {
			return serveRun{}, nil, err
		}
		us.add(res, time.Since(start), cp == 2)
	}
	un := us.row(0, workers, checkpoints)
	un.Speedup = 1
	if baseNs == 0 {
		baseNs = un.CheckpointNs
	} else if un.CheckpointNs > 0 {
		un.Speedup = float64(baseNs) / float64(un.CheckpointNs)
	}
	eng = nil
	base = shard.Config{}
	debug.FreeOSMemory()
	fmt.Fprintf(stdout, "serve unsharded (workers=%d): %v/checkpoint, %.0f req/s, p99 %v\n",
		workers, time.Duration(un.CheckpointNs), un.ThroughputRequestsPerS, time.Duration(un.P99LatencyNs))

	var runs []serveRun
	for _, n := range counts {
		cfg, err := shard.NewBenchConfig(users, servers, models, n)
		if err != nil {
			return serveRun{}, nil, err
		}
		cfg.Workers = workers
		cfg.Trace = &shard.TraceConfig{RequestsPerUserPerHour: rate, WindowS: windowS}
		se, err := shard.NewEngine(cfg, rng.New(1))
		if err != nil {
			return serveRun{}, nil, err
		}
		if _, err := se.Checkpoint(1); err != nil { // warm-up
			return serveRun{}, nil, err
		}
		warmHandoffs := se.Handoffs()
		var ss serveStats
		for cp := 2; cp <= checkpoints+1; cp++ {
			start := time.Now()
			st, err := se.Checkpoint(cp)
			if err != nil {
				return serveRun{}, nil, err
			}
			ss.add(st.Serve[0], time.Since(start), cp == 2)
		}
		run := ss.row(n, workers, checkpoints)
		run.Handoffs = se.Handoffs() - warmHandoffs
		if ss.dur > 0 {
			run.Speedup = float64(baseNs) / float64(ss.dur)
		}
		runs = append(runs, run)
		fmt.Fprintf(stdout, "serve %d shards (workers=%d): %v/checkpoint (%.2fx), %.0f req/s, hit %.4f vs %.4f, p99 %v, %d handoffs\n",
			n, workers, time.Duration(run.CheckpointNs), run.Speedup, run.ThroughputRequestsPerS,
			run.HitRatioMean, un.HitRatioMean, time.Duration(run.P99LatencyNs), run.Handoffs)
		se = nil
		cfg = shard.Config{}
		debug.FreeOSMemory()
	}
	return un, runs, nil
}

// runServe executes the trace-driven serving benchmark — the single-core
// and multicore sweeps — and writes the report.
func runServe(stdout io.Writer, users, servers, models int, rate float64, checkpoints int, counts []int, out string) error {
	if checkpoints <= 0 {
		return fmt.Errorf("serve checkpoints must be positive, got %d", checkpoints)
	}
	if rate <= 0 {
		return fmt.Errorf("serve request rate must be positive, got %v", rate)
	}
	var rep serveReport

	un, runs, err := serveSweep(stdout, &rep.Scenario, users, servers, models, rate, checkpoints, 1, counts, 0)
	if err != nil {
		return err
	}
	rep.Unsharded = un
	rep.Sharded = runs

	mcWorkers := runtime.NumCPU()
	if mcWorkers < 2 {
		mcWorkers = 2
	}
	mcUn, mcRuns, err := serveSweep(stdout, nil, users, servers, models, rate, checkpoints, mcWorkers, counts, un.CheckpointNs)
	if err != nil {
		return err
	}
	rep.Multicore.Workers = mcWorkers
	rep.Multicore.Unsharded = mcUn
	rep.Multicore.Sharded = mcRuns

	rep.Speedup = rep.Sharded[len(rep.Sharded)-1].Speedup
	rep.SpeedupDefinition = "end-to-end per-checkpoint wall time of the trace-driven serving loop (walk + membership plan + instance refresh + request synthesis + event-driven serve + triggered re-placements) of the unsharded dynamics engine over the sharded multi-cell engine at the largest cell count, all worker pools pinned to one goroutine; the multicore section repeats the sweep with workers = max(2, NumCPU), speedups still against the single-core unsharded baseline; latency quantiles are exact within each window (per-cell sorted buffers merged before the quantile is read) and request-weighted-averaged across the timed checkpoints"

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := validateServeReport(data); err != nil {
		return fmt.Errorf("emitted serve report fails schema validation: %w", err)
	}
	if out == "-" {
		_, err = stdout.Write(data)
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "serve speedup %.2fx at %d shards -> %s\n",
		rep.Speedup, rep.Sharded[len(rep.Sharded)-1].Shards, out)
	return nil
}

// checkServeRuns validates one {unsharded, sharded[]} group of a serve
// report.
func checkServeRuns(doc map[string]any, label string) error {
	un, ok := doc["unsharded"].(map[string]any)
	if !ok {
		return fmt.Errorf("%sunsharded: missing or not an object", label)
	}
	if err := checkFields(un, serveRunSchema); err != nil {
		return fmt.Errorf("%sunsharded: %w", label, err)
	}
	runs, ok := doc["sharded"].([]any)
	if !ok || len(runs) == 0 {
		return fmt.Errorf("%ssharded: missing or empty", label)
	}
	for i, r := range runs {
		obj, ok := r.(map[string]any)
		if !ok {
			return fmt.Errorf("%ssharded[%d]: not an object", label, i)
		}
		if err := checkFields(obj, serveRunSchema); err != nil {
			return fmt.Errorf("%ssharded[%d]: %w", label, i, err)
		}
		if v, _ := obj["speedup"].(float64); v < 0.000001 {
			return fmt.Errorf("%ssharded[%d]: speedup %v below minimum", label, i, v)
		}
		// The quantiles must be ordered; a crossed pair means the merge or
		// the weighting broke.
		p50, _ := obj["p50_latency_ns"].(float64)
		p95, _ := obj["p95_latency_ns"].(float64)
		p99, _ := obj["p99_latency_ns"].(float64)
		if p50 > p95 || p95 > p99 {
			return fmt.Errorf("%ssharded[%d]: latency quantiles out of order: p50=%v p95=%v p99=%v", label, i, p50, p95, p99)
		}
	}
	return nil
}

// validateServeReport checks the emitted BENCH_serve.json bytes against the
// documented schema (docs/BENCHMARKS.md): the scenario header including the
// request rate, the single-core unsharded baseline and sharded entries with
// request-level throughput and ordered latency quantiles, and the multicore
// section.
func validateServeReport(data []byte) error {
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	if err := checkFields(doc, serveTopSchema); err != nil {
		return err
	}
	if _, ok := doc["speedup_definition"].(string); !ok {
		return fmt.Errorf("speedup_definition: missing or not a string")
	}
	if err := checkServeRuns(doc, ""); err != nil {
		return err
	}
	mc, ok := doc["multicore"].(map[string]any)
	if !ok {
		return fmt.Errorf("multicore: missing or not an object")
	}
	return checkServeRuns(mc, "multicore.")
}
