package main

// The scale section of BENCH_shard.json: one memory-accounted row per
// configured population, headlined by K = 1M users on a planned-grid
// deployment (shard.NewScaleBenchConfig — coordinator global instance,
// LayoutGrid servers). Unlike the comparison sweeps, a scale row has no
// unsharded baseline: at a million users the whole-area engine is the thing
// this repository exists to avoid building. What the row reports instead is
// what capacity planning needs — per-checkpoint latency and user
// throughput, bytes pinned per user with the full by-component footprint
// breakdown (the MemoryFootprint seam threaded up from the instances,
// evaluators, and cells), steady-state heap allocations per checkpoint
// (runtime Mallocs delta over the timed window; the worker pools' goroutine
// spawns keep it nonzero at Workers >= 2, and the pooled refresh/handoff
// path keeps it tiny), and the process's peak RSS.

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"trimcaching/internal/memprof"
	"trimcaching/internal/rng"
	"trimcaching/internal/shard"
)

// scaleSpec is one scale row's configuration.
type scaleSpec struct {
	Users       int
	Servers     int
	Models      int
	Shards      int
	Checkpoints int
}

// scaleRun is one memory-accounted scale row.
type scaleRun struct {
	Users   int `json:"users"`
	Servers int `json:"servers"`
	Models  int `json:"models"`
	Shards  int `json:"shards"`
	// Workers is the cell-pool bound the row ran with, always >= 2: the
	// scale row documents the deployment configuration, not the pinned
	// single-core comparison the sweep sections make.
	Workers     int `json:"workers"`
	Checkpoints int `json:"checkpoints"`
	// CheckpointNs is the fastest timed checkpoint (same min filter as the
	// sweep rows).
	CheckpointNs        int64   `json:"checkpoint_ns_per_op"`
	ThroughputUsersPerS float64 `json:"throughput_users_per_s"`
	HitRatioMean        float64 `json:"hit_ratio_mean"`
	Handoffs            int     `json:"handoffs"`
	Grows               int     `json:"grows"`
	// BytesPerUser is the engine's accounted footprint total over K — the
	// capacity-planning number.
	BytesPerUser float64 `json:"bytes_per_user"`
	// AllocsPerCheckpoint is the steady-state heap allocation count per
	// timed checkpoint (Mallocs delta / checkpoints). The zero-allocation
	// contract is pinned at Workers = 1 by the AllocsPerRun regression
	// tests; at Workers >= 2 the residue is the worker pools' goroutine
	// machinery, so a healthy row is small but never zero — the schema
	// validator rejects 0 as broken accounting.
	AllocsPerCheckpoint float64 `json:"allocs_per_checkpoint"`
	// FootprintTotalBytes is the accounted footprint's component sum;
	// Footprint is its by-component breakdown.
	FootprintTotalBytes int64             `json:"footprint_total_bytes"`
	Footprint           memprof.Footprint `json:"footprint"`
	// PeakRSSBytes is the process high-water resident set (VmHWM) after the
	// run — the whole process, construction spikes included, so it bounds
	// the accounted footprint from above.
	PeakRSSBytes int64 `json:"peak_rss_bytes"`
}

// scaleRunSchema validates one scale row. bytes_per_user and
// allocs_per_checkpoint are the fields this section exists for: missing,
// zero, or non-numeric values fail the run (non-finite values cannot reach
// validation — Go's JSON encoder rejects NaN and ±Inf at marshal time).
var scaleRunSchema = []fieldSpec{
	{"users", 1},
	{"servers", 1},
	{"models", 1},
	{"shards", 1},
	{"workers", 2},
	{"checkpoints", 1},
	{"checkpoint_ns_per_op", 1},
	{"throughput_users_per_s", 0.000001},
	{"hit_ratio_mean", 0.000001},
	{"bytes_per_user", 0.000001},
	{"allocs_per_checkpoint", 0.000001},
	{"footprint_total_bytes", 1},
	{"peak_rss_bytes", 1},
	{"footprint.reach_bytes", 1},
	{"footprint.rank_bytes", 1},
	{"footprint.rate_bytes", 1},
	{"footprint.workload_bytes", 1},
	{"footprint.topology_bytes", 1},
	{"footprint.evaluator_bytes", 1},
	{"footprint.measurement_bytes", 1},
	{"footprint.scratch_bytes", 1},
	{"footprint.coordinator_bytes", 1},
}

// runScale executes one scale row: build the coordinator-backed sharded
// engine, warm up one checkpoint, then time the rest while counting heap
// allocations, and report the accounted footprint.
func runScale(stdout io.Writer, spec scaleSpec) (scaleRun, error) {
	workers := runtime.NumCPU()
	if workers < 2 {
		workers = 2
	}
	cfg, err := shard.NewScaleBenchConfig(spec.Users, spec.Servers, spec.Models, spec.Shards)
	if err != nil {
		return scaleRun{}, err
	}
	cfg.Workers = workers
	buildStart := time.Now()
	e, err := shard.NewEngine(cfg, rng.New(1))
	if err != nil {
		return scaleRun{}, err
	}
	fmt.Fprintf(stdout, "scale K=%d: engine built in %v\n", spec.Users, time.Since(buildStart).Round(time.Millisecond))
	// Two warm-up checkpoints, not the sweep's one: the first absorbs the
	// flip-index build, the second lets the pooled handoff and refresh
	// buffers grow to the walk's high-water mark, so the timed window
	// reports steady-state allocation, not pool growth.
	for cp := 1; cp <= 2; cp++ {
		if _, err := e.Checkpoint(cp); err != nil {
			return scaleRun{}, err
		}
	}
	warmHandoffs, warmGrows := e.Handoffs(), e.Grows()
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	var hits float64
	var dur time.Duration
	for cp := 3; cp <= spec.Checkpoints+2; cp++ {
		start := time.Now()
		st, err := e.Checkpoint(cp)
		if err != nil {
			return scaleRun{}, err
		}
		if d := time.Since(start); cp == 3 || d < dur {
			dur = d
		}
		hits += st.HitRatio[0]
	}
	runtime.ReadMemStats(&m1)
	f := e.MemoryFootprint()
	run := scaleRun{
		Users:               spec.Users,
		Servers:             spec.Servers,
		Models:              spec.Models,
		Shards:              spec.Shards,
		Workers:             workers,
		Checkpoints:         spec.Checkpoints,
		CheckpointNs:        dur.Nanoseconds(),
		ThroughputUsersPerS: float64(spec.Users) / dur.Seconds(),
		HitRatioMean:        hits / float64(spec.Checkpoints),
		Handoffs:            e.Handoffs() - warmHandoffs,
		Grows:               e.Grows() - warmGrows,
		BytesPerUser:        float64(f.Total()) / float64(spec.Users),
		AllocsPerCheckpoint: float64(m1.Mallocs-m0.Mallocs) / float64(spec.Checkpoints),
		FootprintTotalBytes: f.Total(),
		Footprint:           f,
		PeakRSSBytes:        peakRSSBytes(m1.Sys),
	}
	fmt.Fprintf(stdout,
		"scale K=%d M=%d I=%d shards=%d workers=%d: %v/checkpoint, %.0f users/s, %.1f B/user, %.1f allocs/checkpoint, peak RSS %d MiB\n",
		spec.Users, spec.Servers, spec.Models, spec.Shards, workers,
		time.Duration(run.CheckpointNs), run.ThroughputUsersPerS, run.BytesPerUser,
		run.AllocsPerCheckpoint, run.PeakRSSBytes>>20)
	e = nil
	cfg = shard.Config{}
	debug.FreeOSMemory()
	return run, nil
}

// peakRSSBytes reads the process peak resident set from /proc/self/status
// (VmHWM, kilobytes). Off Linux — or if the field is missing — it falls
// back to the runtime's OS-reserved byte count, which is always positive.
func peakRSSBytes(fallback uint64) int64 {
	if data, err := os.ReadFile("/proc/self/status"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			rest, ok := strings.CutPrefix(line, "VmHWM:")
			if !ok {
				continue
			}
			rest = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(rest), "kB"))
			if kb, err := strconv.ParseInt(rest, 10, 64); err == nil && kb > 0 {
				return kb << 10
			}
		}
	}
	return int64(fallback)
}
