package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSmokeRunEmitsValidReport drives the whole benchmark pipeline at toy
// scale and checks the emitted artifact parses and passes the documented
// schema (run itself validates before writing; this pins the contract from
// the outside too).
func TestSmokeRunEmitsValidReport(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke benchmark run in -short mode")
	}
	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout bytes.Buffer
	if err := run([]string{"-smoke", "-out", out}, &stdout); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "refresh") {
		t.Fatalf("summary line missing: %q", stdout.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := validateReport(data); err != nil {
		t.Fatalf("emitted report fails schema: %v", err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Scenario.Models <= 0 || rep.Measurement.Realizations <= 0 {
		t.Fatalf("degenerate smoke report: %+v", rep)
	}
}

// TestValidateReportRejectsBrokenSections pins the failure modes the smoke
// job exists to catch: missing sections, zero-op phases, and non-finite
// speedups.
func TestValidateReportRejectsBrokenSections(t *testing.T) {
	good := []byte(`{
		"scenario": {"servers": 1, "users": 1, "models": 1, "checkpointMin": 1, "slotS": 5},
		"refresh": {"ops": 2, "rebuild_ns_per_op": 10, "incremental_ns_per_op": 10, "speedup": 1},
		"replace": {"ops": 2, "rebuild_ns_per_op": 10, "incremental_ns_per_op": 10, "speedup": 1},
		"timeline_end_to_end": {"ops": 2, "rebuild_ns_per_op": 10, "incremental_ns_per_op": 10, "speedup": 1},
		"measurement": {"ops": 2, "realizations": 4, "block_size": 4, "fused_ns_per_op": 10,
			"per_realization_ns_per_op": 10, "unfused_ns_per_op": 10, "speedup": 1, "blocked_speedup": 1},
		"resolve": {"ops": 2, "heap_rebuild_ns_per_op": 10, "persistent_ns_per_op": 10, "speedup": 1,
			"small_delta_stride": 100, "small_delta_heap_rebuild_ns_per_op": 10,
			"small_delta_persistent_ns_per_op": 10, "small_delta_speedup": 1},
		"speedup": 1,
		"speedup_definition": "x"
	}`)
	if err := validateReport(good); err != nil {
		t.Fatalf("baseline report must validate, got %v", err)
	}
	mutate := func(fn func(m map[string]any)) []byte {
		var m map[string]any
		if err := json.Unmarshal(good, &m); err != nil {
			t.Fatal(err)
		}
		fn(m)
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	cases := map[string][]byte{
		"missing section": mutate(func(m map[string]any) { delete(m, "measurement") }),
		"zero ops":        mutate(func(m map[string]any) { m["refresh"].(map[string]any)["ops"] = 0 }),
		"zero duration":   mutate(func(m map[string]any) { m["resolve"].(map[string]any)["persistent_ns_per_op"] = 0 }),
		"zero speedup":    mutate(func(m map[string]any) { m["speedup"] = 0 }),
		"missing field":   mutate(func(m map[string]any) { delete(m["replace"].(map[string]any), "speedup") }),
		"non-numeric":     mutate(func(m map[string]any) { m["timeline_end_to_end"].(map[string]any)["speedup"] = "fast" }),
		"no definition":   mutate(func(m map[string]any) { delete(m, "speedup_definition") }),
		"no small delta":  mutate(func(m map[string]any) { delete(m["resolve"].(map[string]any), "small_delta_speedup") }),
		"1-stride":        mutate(func(m map[string]any) { m["resolve"].(map[string]any)["small_delta_stride"] = 1 }),
		"no block size":   mutate(func(m map[string]any) { delete(m["measurement"].(map[string]any), "block_size") }),
		"no per-realization row": mutate(func(m map[string]any) {
			delete(m["measurement"].(map[string]any), "per_realization_ns_per_op")
		}),
		"zero blocked speedup": mutate(func(m map[string]any) {
			m["measurement"].(map[string]any)["blocked_speedup"] = 0
		}),
	}
	for name, data := range cases {
		if err := validateReport(data); err == nil {
			t.Errorf("%s: validation must fail", name)
		}
	}
}

// TestValidateShardReport pins the BENCH_shard.json schema contract.
func TestValidateShardReport(t *testing.T) {
	good := []byte(`{
		"scenario": {"servers": 4, "users": 100, "models": 8, "checkpointMin": 10, "slotS": 5, "realizations": 2},
		"unsharded": {"shards": 0, "workers": 1, "checkpoints": 2, "checkpoint_ns_per_op": 10,
			"throughput_users_per_s": 5, "speedup": 1, "hit_ratio_mean": 0.5, "handoffs": 0, "grows": 0},
		"sharded": [
			{"shards": 1, "workers": 1, "checkpoints": 2, "checkpoint_ns_per_op": 10,
			 "throughput_users_per_s": 5, "speedup": 1, "hit_ratio_mean": 0.5, "handoffs": 0, "grows": 0},
			{"shards": 2, "workers": 1, "checkpoints": 2, "checkpoint_ns_per_op": 5,
			 "throughput_users_per_s": 10, "speedup": 2, "hit_ratio_mean": 0.45, "handoffs": 3, "grows": 0}
		],
		"multicore": {
			"workers": 2,
			"unsharded": {"shards": 0, "workers": 2, "checkpoints": 2, "checkpoint_ns_per_op": 8,
				"throughput_users_per_s": 6, "speedup": 1.25, "hit_ratio_mean": 0.5, "handoffs": 0, "grows": 0},
			"sharded": [
				{"shards": 2, "workers": 2, "checkpoints": 2, "checkpoint_ns_per_op": 4,
				 "throughput_users_per_s": 12, "speedup": 2.5, "hit_ratio_mean": 0.45, "handoffs": 3, "grows": 0}
			]
		},
		"scale": [
			{"users": 2000, "servers": 16, "models": 24, "shards": 4, "workers": 2, "checkpoints": 2,
			 "checkpoint_ns_per_op": 100, "throughput_users_per_s": 20, "hit_ratio_mean": 0.9,
			 "handoffs": 5, "grows": 0, "bytes_per_user": 4700.5, "allocs_per_checkpoint": 700,
			 "footprint_total_bytes": 45,
			 "footprint": {"reach_bytes": 5, "rank_bytes": 5, "rate_bytes": 5, "workload_bytes": 5,
				"topology_bytes": 5, "evaluator_bytes": 5, "measurement_bytes": 5, "scratch_bytes": 5,
				"coordinator_bytes": 5},
			 "peak_rss_bytes": 1000}
		],
		"speedup": 2,
		"speedup_definition": "x"
	}`)
	if err := validateShardReport(good); err != nil {
		t.Fatalf("baseline shard report must validate, got %v", err)
	}
	mutate := func(fn func(m map[string]any)) []byte {
		var m map[string]any
		if err := json.Unmarshal(good, &m); err != nil {
			t.Fatal(err)
		}
		fn(m)
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	cases := map[string][]byte{
		"no unsharded":  mutate(func(m map[string]any) { delete(m, "unsharded") }),
		"empty sharded": mutate(func(m map[string]any) { m["sharded"] = []any{} }),
		"zero hit":      mutate(func(m map[string]any) { m["unsharded"].(map[string]any)["hit_ratio_mean"] = 0 }),
		"zero speedup": mutate(func(m map[string]any) {
			m["sharded"].([]any)[1].(map[string]any)["speedup"] = 0
		}),
		"missing run field": mutate(func(m map[string]any) {
			delete(m["sharded"].([]any)[0].(map[string]any), "checkpoint_ns_per_op")
		}),
		"no definition": mutate(func(m map[string]any) { delete(m, "speedup_definition") }),
		"no workers": mutate(func(m map[string]any) {
			delete(m["unsharded"].(map[string]any), "workers")
		}),
		"no multicore": mutate(func(m map[string]any) { delete(m, "multicore") }),
		"single-core multicore": mutate(func(m map[string]any) {
			m["multicore"].(map[string]any)["workers"] = 1
		}),
		"empty multicore sharded": mutate(func(m map[string]any) {
			m["multicore"].(map[string]any)["sharded"] = []any{}
		}),
		"no scale":    mutate(func(m map[string]any) { delete(m, "scale") }),
		"empty scale": mutate(func(m map[string]any) { m["scale"] = []any{} }),
		"missing bytes_per_user": mutate(func(m map[string]any) {
			delete(m["scale"].([]any)[0].(map[string]any), "bytes_per_user")
		}),
		"zero bytes_per_user": mutate(func(m map[string]any) {
			m["scale"].([]any)[0].(map[string]any)["bytes_per_user"] = 0
		}),
		"non-numeric bytes_per_user": mutate(func(m map[string]any) {
			m["scale"].([]any)[0].(map[string]any)["bytes_per_user"] = "big"
		}),
		"missing allocs_per_checkpoint": mutate(func(m map[string]any) {
			delete(m["scale"].([]any)[0].(map[string]any), "allocs_per_checkpoint")
		}),
		"zero allocs_per_checkpoint": mutate(func(m map[string]any) {
			m["scale"].([]any)[0].(map[string]any)["allocs_per_checkpoint"] = 0
		}),
		"non-numeric allocs_per_checkpoint": mutate(func(m map[string]any) {
			m["scale"].([]any)[0].(map[string]any)["allocs_per_checkpoint"] = "few"
		}),
		"missing footprint component": mutate(func(m map[string]any) {
			fp := m["scale"].([]any)[0].(map[string]any)["footprint"].(map[string]any)
			delete(fp, "coordinator_bytes")
		}),
		"footprint total desync": mutate(func(m map[string]any) {
			m["scale"].([]any)[0].(map[string]any)["footprint_total_bytes"] = 46
		}),
		"missing peak rss": mutate(func(m map[string]any) {
			delete(m["scale"].([]any)[0].(map[string]any), "peak_rss_bytes")
		}),
		"single-worker scale row": mutate(func(m map[string]any) {
			m["scale"].([]any)[0].(map[string]any)["workers"] = 1
		}),
	}
	for name, data := range cases {
		if err := validateShardReport(data); err == nil {
			t.Errorf("%s: validation must fail", name)
		}
	}
}

func TestValidateServeReport(t *testing.T) {
	good := []byte(`{
		"scenario": {"servers": 4, "users": 100, "models": 8, "checkpointMin": 10, "slotS": 5,
			"requestsPerUserPerHour": 6, "windowS": 600},
		"unsharded": {"shards": 0, "workers": 1, "checkpoints": 2, "checkpoint_ns_per_op": 10,
			"requests": 40, "throughput_requests_per_s": 5, "speedup": 1, "hit_ratio_mean": 0.5,
			"p50_latency_ns": 100, "p95_latency_ns": 200, "p99_latency_ns": 300, "handoffs": 0},
		"sharded": [
			{"shards": 1, "workers": 1, "checkpoints": 2, "checkpoint_ns_per_op": 10,
			 "requests": 40, "throughput_requests_per_s": 5, "speedup": 1, "hit_ratio_mean": 0.5,
			 "p50_latency_ns": 100, "p95_latency_ns": 200, "p99_latency_ns": 300, "handoffs": 0},
			{"shards": 2, "workers": 1, "checkpoints": 2, "checkpoint_ns_per_op": 5,
			 "requests": 40, "throughput_requests_per_s": 10, "speedup": 2, "hit_ratio_mean": 0.45,
			 "p50_latency_ns": 100, "p95_latency_ns": 200, "p99_latency_ns": 300, "handoffs": 3}
		],
		"multicore": {
			"workers": 2,
			"unsharded": {"shards": 0, "workers": 2, "checkpoints": 2, "checkpoint_ns_per_op": 8,
				"requests": 40, "throughput_requests_per_s": 6, "speedup": 1.25, "hit_ratio_mean": 0.5,
				"p50_latency_ns": 100, "p95_latency_ns": 200, "p99_latency_ns": 300, "handoffs": 0},
			"sharded": [
				{"shards": 2, "workers": 2, "checkpoints": 2, "checkpoint_ns_per_op": 4,
				 "requests": 40, "throughput_requests_per_s": 12, "speedup": 2.5, "hit_ratio_mean": 0.45,
				 "p50_latency_ns": 100, "p95_latency_ns": 200, "p99_latency_ns": 300, "handoffs": 3}
			]
		},
		"speedup": 2,
		"speedup_definition": "x"
	}`)
	if err := validateServeReport(good); err != nil {
		t.Fatalf("baseline serve report must validate, got %v", err)
	}
	mutate := func(fn func(m map[string]any)) []byte {
		var m map[string]any
		if err := json.Unmarshal(good, &m); err != nil {
			t.Fatal(err)
		}
		fn(m)
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	cases := map[string][]byte{
		"no unsharded":  mutate(func(m map[string]any) { delete(m, "unsharded") }),
		"empty sharded": mutate(func(m map[string]any) { m["sharded"] = []any{} }),
		"zero requests": mutate(func(m map[string]any) { m["unsharded"].(map[string]any)["requests"] = 0 }),
		"zero throughput": mutate(func(m map[string]any) {
			m["unsharded"].(map[string]any)["throughput_requests_per_s"] = 0
		}),
		"zero speedup": mutate(func(m map[string]any) {
			m["sharded"].([]any)[1].(map[string]any)["speedup"] = 0
		}),
		"missing p99": mutate(func(m map[string]any) {
			delete(m["sharded"].([]any)[0].(map[string]any), "p99_latency_ns")
		}),
		"crossed quantiles": mutate(func(m map[string]any) {
			m["sharded"].([]any)[1].(map[string]any)["p95_latency_ns"] = 400
		}),
		"no rate": mutate(func(m map[string]any) {
			delete(m["scenario"].(map[string]any), "requestsPerUserPerHour")
		}),
		"no definition": mutate(func(m map[string]any) { delete(m, "speedup_definition") }),
		"no multicore":  mutate(func(m map[string]any) { delete(m, "multicore") }),
		"single-core multicore": mutate(func(m map[string]any) {
			m["multicore"].(map[string]any)["workers"] = 1
		}),
	}
	for name, data := range cases {
		if err := validateServeReport(data); err == nil {
			t.Errorf("%s: validation must fail", name)
		}
	}
}

// TestServeSmokeRunEmitsValidReport drives the trace-driven serving
// benchmark pipeline at toy scale end to end.
func TestServeSmokeRunEmitsValidReport(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke benchmark run in -short mode")
	}
	out := filepath.Join(t.TempDir(), "serve.json")
	var stdout bytes.Buffer
	if err := run([]string{"-smoke", "-serve", "-serveout", out}, &stdout); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := validateServeReport(data); err != nil {
		t.Fatalf("emitted serve report fails schema: %v", err)
	}
	var rep serveReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Sharded) != 2 || rep.Sharded[0].Shards != 1 || rep.Sharded[1].Shards != 2 {
		t.Fatalf("smoke serve shard counts wrong: %+v", rep.Sharded)
	}
	// Shards=1 serving is bit-identical to the unsharded engine: same
	// requests, same hit ratio, same quantiles.
	one, un := rep.Sharded[0], rep.Unsharded
	if one.Requests != un.Requests || one.HitRatioMean != un.HitRatioMean ||
		one.P50LatencyNs != un.P50LatencyNs || one.P99LatencyNs != un.P99LatencyNs {
		t.Errorf("shards=1 serving diverged from unsharded:\n%+v\nvs\n%+v", one, un)
	}
	// Global-user-keyed streams make the synthesized window partition-
	// invariant: every row serves the same request count.
	for i, r := range rep.Sharded {
		if r.Requests != un.Requests {
			t.Errorf("sharded[%d] served %d requests, unsharded %d; the window must partition exactly",
				i, r.Requests, un.Requests)
		}
	}
	// The multicore sweep replays the same timeline with a wider pool;
	// determinism makes its serving numbers bit-identical.
	if rep.Multicore.Unsharded.HitRatioMean != un.HitRatioMean {
		t.Errorf("multicore unsharded hit ratio %v differs from single-core %v",
			rep.Multicore.Unsharded.HitRatioMean, un.HitRatioMean)
	}
	for i, r := range rep.Multicore.Sharded {
		if r.HitRatioMean != rep.Sharded[i].HitRatioMean || r.P99LatencyNs != rep.Sharded[i].P99LatencyNs {
			t.Errorf("multicore sharded[%d] serving differs from single-core:\n%+v\nvs\n%+v",
				i, r, rep.Sharded[i])
		}
	}
}

// TestShardSmokeRunEmitsValidReport drives the shard benchmark pipeline at
// toy scale end to end.
func TestShardSmokeRunEmitsValidReport(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke benchmark run in -short mode")
	}
	out := filepath.Join(t.TempDir(), "shard.json")
	var stdout bytes.Buffer
	if err := run([]string{"-smoke", "-shard", "-shardout", out}, &stdout); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := validateShardReport(data); err != nil {
		t.Fatalf("emitted shard report fails schema: %v", err)
	}
	var rep shardReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Sharded) != 2 || rep.Sharded[0].Shards != 1 || rep.Sharded[1].Shards != 2 {
		t.Fatalf("smoke shard counts wrong: %+v", rep.Sharded)
	}
	// Shards=1 is the sharded coordinator on one whole-area cell: its
	// measured quality must reproduce the unsharded engine exactly.
	if rep.Sharded[0].HitRatioMean != rep.Unsharded.HitRatioMean {
		t.Errorf("shards=1 hit ratio %v differs from unsharded %v",
			rep.Sharded[0].HitRatioMean, rep.Unsharded.HitRatioMean)
	}
	// The multicore sweep replays the same timeline with a wider worker
	// pool; the determinism contract makes its quality bit-identical.
	if rep.Multicore.Workers < 2 {
		t.Errorf("multicore workers %d, want >= 2", rep.Multicore.Workers)
	}
	if rep.Multicore.Unsharded.HitRatioMean != rep.Unsharded.HitRatioMean {
		t.Errorf("multicore unsharded hit ratio %v differs from single-core %v",
			rep.Multicore.Unsharded.HitRatioMean, rep.Unsharded.HitRatioMean)
	}
	for i, r := range rep.Multicore.Sharded {
		if r.HitRatioMean != rep.Sharded[i].HitRatioMean {
			t.Errorf("multicore sharded[%d] hit ratio %v differs from single-core %v",
				i, r.HitRatioMean, rep.Sharded[i].HitRatioMean)
		}
	}
	if len(rep.Scale) != 1 {
		t.Fatalf("smoke scale rows = %d, want 1", len(rep.Scale))
	}
	sc := rep.Scale[0]
	if sc.Workers < 2 {
		t.Errorf("scale workers %d, want >= 2", sc.Workers)
	}
	if sc.BytesPerUser <= 0 || sc.AllocsPerCheckpoint <= 0 || sc.PeakRSSBytes <= 0 {
		t.Errorf("degenerate scale accounting: %+v", sc)
	}
	if sc.FootprintTotalBytes != sc.Footprint.Total() {
		t.Errorf("scale footprint total %d is not the component sum %d",
			sc.FootprintTotalBytes, sc.Footprint.Total())
	}
	if int64(sc.BytesPerUser*float64(sc.Users)+0.5) != sc.FootprintTotalBytes {
		t.Errorf("bytes_per_user %v inconsistent with footprint total %d over %d users",
			sc.BytesPerUser, sc.FootprintTotalBytes, sc.Users)
	}
}
