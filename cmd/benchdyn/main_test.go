package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSmokeRunEmitsValidReport drives the whole benchmark pipeline at toy
// scale and checks the emitted artifact parses and passes the documented
// schema (run itself validates before writing; this pins the contract from
// the outside too).
func TestSmokeRunEmitsValidReport(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke benchmark run in -short mode")
	}
	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout bytes.Buffer
	if err := run([]string{"-smoke", "-out", out}, &stdout); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "refresh") {
		t.Fatalf("summary line missing: %q", stdout.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := validateReport(data); err != nil {
		t.Fatalf("emitted report fails schema: %v", err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Scenario.Models <= 0 || rep.Measurement.Realizations <= 0 {
		t.Fatalf("degenerate smoke report: %+v", rep)
	}
}

// TestValidateReportRejectsBrokenSections pins the failure modes the smoke
// job exists to catch: missing sections, zero-op phases, and non-finite
// speedups.
func TestValidateReportRejectsBrokenSections(t *testing.T) {
	good := []byte(`{
		"scenario": {"servers": 1, "users": 1, "models": 1, "checkpointMin": 1, "slotS": 5},
		"refresh": {"ops": 2, "rebuild_ns_per_op": 10, "incremental_ns_per_op": 10, "speedup": 1},
		"replace": {"ops": 2, "rebuild_ns_per_op": 10, "incremental_ns_per_op": 10, "speedup": 1},
		"timeline_end_to_end": {"ops": 2, "rebuild_ns_per_op": 10, "incremental_ns_per_op": 10, "speedup": 1},
		"measurement": {"ops": 2, "realizations": 4, "fused_ns_per_op": 10, "unfused_ns_per_op": 10, "speedup": 1},
		"resolve": {"ops": 2, "heap_rebuild_ns_per_op": 10, "persistent_ns_per_op": 10, "speedup": 1},
		"speedup": 1,
		"speedup_definition": "x"
	}`)
	if err := validateReport(good); err != nil {
		t.Fatalf("baseline report must validate, got %v", err)
	}
	mutate := func(fn func(m map[string]any)) []byte {
		var m map[string]any
		if err := json.Unmarshal(good, &m); err != nil {
			t.Fatal(err)
		}
		fn(m)
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	cases := map[string][]byte{
		"missing section": mutate(func(m map[string]any) { delete(m, "measurement") }),
		"zero ops":        mutate(func(m map[string]any) { m["refresh"].(map[string]any)["ops"] = 0 }),
		"zero duration":   mutate(func(m map[string]any) { m["resolve"].(map[string]any)["persistent_ns_per_op"] = 0 }),
		"zero speedup":    mutate(func(m map[string]any) { m["speedup"] = 0 }),
		"missing field":   mutate(func(m map[string]any) { delete(m["replace"].(map[string]any), "speedup") }),
		"non-numeric":     mutate(func(m map[string]any) { m["timeline_end_to_end"].(map[string]any)["speedup"] = "fast" }),
		"no definition":   mutate(func(m map[string]any) { delete(m, "speedup_definition") }),
	}
	for name, data := range cases {
		if err := validateReport(data); err == nil {
			t.Errorf("%s: validation must fail", name)
		}
	}
}
