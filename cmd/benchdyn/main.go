// Command benchdyn times the dynamics engine's per-checkpoint costs at
// LoRA scale (M = 10, K = 300, I = 1000) and writes them as JSON, so CI
// can track the perf trajectory machine-readably.
//
// Three numbers are reported, each as rebuild vs incremental:
//
//   - refresh: bringing the instance and evaluator up to date with one
//     checkpoint of user movement — the cost every checkpoint pays, and
//     the one the incremental engine turns from O(M·K·I) into
//     O(M·I·|moved| reachability flips).
//   - replace: a forced placement re-solve at every checkpoint (warm-start
//     repair vs cold solve) — the worst-case trigger cadence; under the
//     paper's degradation-threshold protocol replacement is exceptional.
//   - timeline: a full §VII-E timeline end to end, including the fading
//     measurement, which is mode-independent by construction.
//
// Usage:
//
//	benchdyn -checkpoints 12 -out BENCH_dynamics.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"trimcaching/internal/dynamics"
	"trimcaching/internal/rng"
)

type phase struct {
	Ops           int     `json:"ops"`
	RebuildNs     int64   `json:"rebuild_ns_per_op"`
	IncrementalNs int64   `json:"incremental_ns_per_op"`
	Speedup       float64 `json:"speedup"`
}

type report struct {
	Scenario struct {
		Servers       int     `json:"servers"`
		Users         int     `json:"users"`
		Models        int     `json:"models"`
		CheckpointMin int     `json:"checkpointMin"`
		SlotS         float64 `json:"slotS"`
	} `json:"scenario"`
	// Refresh is the per-checkpoint instance+evaluator update alone.
	Refresh phase `json:"refresh"`
	// Replace is refresh plus a forced placement re-solve per checkpoint.
	Replace phase `json:"replace"`
	// Timeline is the full engine loop including fading measurement.
	Timeline phase `json:"timeline_end_to_end"`
	// Speedup is the headline number: per-checkpoint refresh speedup of
	// the incremental engine over the full-rebuild path.
	Speedup           float64 `json:"speedup"`
	SpeedupDefinition string  `json:"speedup_definition"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdyn:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchdyn", flag.ContinueOnError)
	checkpoints := fs.Int("checkpoints", 12, "checkpoints per measured round (the §VII-E timeline has 12)")
	rounds := fs.Int("rounds", 4, "measured rounds per phase; the fastest round is reported")
	out := fs.String("out", "BENCH_dynamics.json", "output JSON path, - for stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *checkpoints <= 0 || *rounds <= 0 {
		return fmt.Errorf("checkpoints and rounds must be positive, got %d and %d", *checkpoints, *rounds)
	}

	var rep report
	cfg, err := dynamics.NewLoRAScaleConfig(dynamics.Incremental)
	if err != nil {
		return err
	}
	rep.Scenario.Servers = cfg.Instance.NumServers()
	rep.Scenario.Users = cfg.Instance.NumUsers()
	rep.Scenario.Models = cfg.Instance.NumModels()
	rep.Scenario.CheckpointMin = cfg.CheckpointMin
	rep.Scenario.SlotS = cfg.SlotS

	// Each phase runs `rounds` rounds and keeps the fastest. Every round
	// gets a fresh engine with the same seed, so all rounds replay the
	// identical checkpoint sequence and the minimum is a clean filter for
	// scheduler and GC noise; a warm-up checkpoint first absorbs the
	// incremental mode's one-time threshold flip index build.
	profile := func(mode dynamics.Mode, forceReplace bool) (refresh, repair time.Duration, err error) {
		for r := 0; r < *rounds; r++ {
			cfg, err := dynamics.NewLoRAScaleConfig(mode)
			if err != nil {
				return 0, 0, err
			}
			e, err := dynamics.NewEngine(cfg, rng.New(1))
			if err != nil {
				return 0, 0, err
			}
			if _, _, err := e.ProfileCheckpoints(1, false); err != nil {
				return 0, 0, err
			}
			runtime.GC()
			rf, rp, err := e.ProfileCheckpoints(*checkpoints, forceReplace)
			if err != nil {
				return 0, 0, err
			}
			if r == 0 || rf+rp < refresh+repair {
				refresh, repair = rf, rp
			}
		}
		return refresh, repair, nil
	}
	// Refresh is measured on its own pass: under the paper's protocol a
	// checkpoint normally only refreshes and measures, and interleaving
	// forced solves would pollute its cache behavior.
	rebRefresh, _, err := profile(dynamics.Rebuild, false)
	if err != nil {
		return err
	}
	incRefresh, _, err := profile(dynamics.Incremental, false)
	if err != nil {
		return err
	}
	rebRefresh2, rebRepair, err := profile(dynamics.Rebuild, true)
	if err != nil {
		return err
	}
	incRefresh2, incRepair, err := profile(dynamics.Incremental, true)
	if err != nil {
		return err
	}
	fill := func(p *phase, reb, inc time.Duration) {
		p.Ops = *checkpoints
		p.RebuildNs = reb.Nanoseconds() / int64(*checkpoints)
		p.IncrementalNs = inc.Nanoseconds() / int64(*checkpoints)
		if inc > 0 {
			p.Speedup = float64(reb) / float64(inc)
		}
	}
	fill(&rep.Refresh, rebRefresh, incRefresh)
	fill(&rep.Replace, rebRefresh2+rebRepair, incRefresh2+incRepair)

	timeline := func(mode dynamics.Mode) (time.Duration, error) {
		cfg, err := dynamics.NewLoRAScaleConfig(mode)
		if err != nil {
			return 0, err
		}
		start := time.Now()
		if _, err := dynamics.Run(cfg, rng.New(2)); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}
	rebTimeline, err := timeline(dynamics.Rebuild)
	if err != nil {
		return err
	}
	incTimeline, err := timeline(dynamics.Incremental)
	if err != nil {
		return err
	}
	fill(&rep.Timeline, rebTimeline, incTimeline)

	rep.Speedup = rep.Refresh.Speedup
	rep.SpeedupDefinition = "per-checkpoint instance refresh (delta reachability update + evaluator reuse) vs full rebuild; replace and timeline_end_to_end report the forced-re-solve and measurement-included views"

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "-" {
		_, err = stdout.Write(data)
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "refresh %.2fx, replace %.2fx, timeline %.2fx -> %s\n",
		rep.Refresh.Speedup, rep.Replace.Speedup, rep.Timeline.Speedup, *out)
	return nil
}
