// Command benchdyn times the dynamics engine's per-checkpoint costs at
// LoRA scale (M = 10, K = 300, I = 1000) and writes them as JSON, so CI
// can track the perf trajectory machine-readably.
//
// Three phases are reported as rebuild vs incremental:
//
//   - refresh: bringing the instance and evaluator up to date with one
//     checkpoint of user movement — the cost every checkpoint pays, and
//     the one the incremental engine turns from O(M·K·I) into
//     O(M·I·|moved| reachability flips).
//   - replace: a forced placement re-solve at every checkpoint (warm-start
//     repair vs cold solve) — the worst-case trigger cadence; under the
//     paper's degradation-threshold protocol replacement is exceptional.
//   - timeline: a full §VII-E timeline end to end, including the fading
//     measurement.
//
// Two per-kernel sections isolate the fused hot loops:
//
//   - measurement: one checkpoint measurement (all configured fading
//     realizations) through the fused single-pass kernel vs the two-pass
//     FadedReach + HitRatioWithReach reference, on the incremental
//     engine's live instance.
//   - resolve: a warm placement re-solve with the evaluator's persistent
//     commit heap carried across checkpoints vs the same solve with the
//     heap rebuilt from all M·I pairs each time.
//
// The emitted JSON is validated against the documented schema
// (docs/BENCHMARKS.md) before it is written: missing sections, zero-op
// phases, and non-finite speedups fail the run, so the perf plumbing
// cannot rot silently. -smoke runs the whole pipeline on a toy scenario in
// seconds for CI.
//
// Usage:
//
//	benchdyn -checkpoints 12 -out BENCH_dynamics.json
//	benchdyn -smoke -out -
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"trimcaching/internal/dynamics"
	"trimcaching/internal/placement"
	"trimcaching/internal/rng"
	"trimcaching/internal/sim"
)

type phase struct {
	Ops           int     `json:"ops"`
	RebuildNs     int64   `json:"rebuild_ns_per_op"`
	IncrementalNs int64   `json:"incremental_ns_per_op"`
	Speedup       float64 `json:"speedup"`
}

// kernelPhase compares the realization-blocked fused measurement kernel
// against the same kernel forced to per-realization sweeps and against the
// two-pass reference; one op is one full checkpoint measurement
// (Realizations fading realizations). All three paths are bit-identical;
// the two extra rows isolate how much of the fused win comes from blocking
// (one request sweep scoring a whole block of realizations) versus from
// fusing alone.
type kernelPhase struct {
	Ops          int `json:"ops"`
	Realizations int `json:"realizations"`
	// BlockSize is the realizations per fused sweep the blocked row ran
	// with (the session's auto split across its workers).
	BlockSize int   `json:"block_size"`
	FusedNs   int64 `json:"fused_ns_per_op"`
	// PerRealizationNs is the fused kernel with SetBlockSize(1): one
	// request sweep per realization.
	PerRealizationNs int64   `json:"per_realization_ns_per_op"`
	UnfusedNs        int64   `json:"unfused_ns_per_op"`
	Speedup          float64 `json:"speedup"`
	// BlockedSpeedup is per_realization_ns_per_op over fused_ns_per_op —
	// the blocking win alone.
	BlockedSpeedup float64 `json:"blocked_speedup"`
}

// resolvePhase compares a warm re-solve with the persistent commit heap
// against the same solve rebuilding its heap from all M·I pairs, on two
// workloads: the full re-key view (every user moves every checkpoint) and
// a small-delta view where only one user in small_delta_stride moves — the
// update pattern per-cell sharding produces, where the heap's carry-over
// actually pays off.
type resolvePhase struct {
	Ops                     int     `json:"ops"`
	HeapRebuildNs           int64   `json:"heap_rebuild_ns_per_op"`
	PersistentNs            int64   `json:"persistent_ns_per_op"`
	Speedup                 float64 `json:"speedup"`
	SmallDeltaStride        int     `json:"small_delta_stride"`
	SmallDeltaHeapRebuildNs int64   `json:"small_delta_heap_rebuild_ns_per_op"`
	SmallDeltaPersistentNs  int64   `json:"small_delta_persistent_ns_per_op"`
	SmallDeltaSpeedup       float64 `json:"small_delta_speedup"`
}

type report struct {
	Scenario struct {
		Servers       int     `json:"servers"`
		Users         int     `json:"users"`
		Models        int     `json:"models"`
		CheckpointMin int     `json:"checkpointMin"`
		SlotS         float64 `json:"slotS"`
	} `json:"scenario"`
	// Refresh is the per-checkpoint instance+evaluator update alone.
	Refresh phase `json:"refresh"`
	// Replace is refresh plus a forced placement re-solve per checkpoint.
	Replace phase `json:"replace"`
	// Timeline is the full engine loop including fading measurement.
	Timeline phase `json:"timeline_end_to_end"`
	// Measurement is the per-checkpoint fading measurement, fused vs
	// two-pass.
	Measurement kernelPhase `json:"measurement"`
	// Resolve is the warm re-solve, persistent commit heap vs per-solve
	// heap rebuild.
	Resolve resolvePhase `json:"resolve"`
	// Speedup is the headline number: per-checkpoint refresh speedup of
	// the incremental engine over the full-rebuild path.
	Speedup           float64 `json:"speedup"`
	SpeedupDefinition string  `json:"speedup_definition"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdyn:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchdyn", flag.ContinueOnError)
	checkpoints := fs.Int("checkpoints", 12, "checkpoints per measured round (the §VII-E timeline has 12)")
	rounds := fs.Int("rounds", 4, "measured rounds per phase; the fastest round is reported")
	smoke := fs.Bool("smoke", false, "run a toy-scale timeline in seconds to validate the benchmark plumbing and the emitted JSON schema (numbers are not comparable to full runs)")
	out := fs.String("out", "BENCH_dynamics.json", "output JSON path, - for stdout")
	shardBench := fs.Bool("shard", false, "run the shard scale benchmark instead (sharded multi-cell engine vs unsharded), writing -shardout")
	shardOut := fs.String("shardout", "BENCH_shard.json", "shard benchmark output JSON path, - for stdout")
	serveBench := fs.Bool("serve", false, "run the trace-driven serving benchmark instead (request-level throughput and tail latency, unsharded vs sharded), writing -serveout")
	serveOut := fs.String("serveout", "BENCH_serve.json", "serve benchmark output JSON path, - for stdout")
	serveRate := fs.Float64("serverate", 1, "serve benchmark request rate (requests per user per hour)")
	serveCheckpoints := fs.Int("servecheckpoints", 4, "timed checkpoints per serve benchmark engine (after one warm-up; the fastest is reported)")
	shardUsers := fs.Int("shardusers", 100000, "shard benchmark users K")
	shardServers := fs.Int("shardservers", 100, "shard benchmark servers M")
	shardModels := fs.Int("shardmodels", 250, "shard benchmark LoRA adapters I")
	shardCheckpoints := fs.Int("shardcheckpoints", 4, "timed checkpoints per shard benchmark engine (after one warm-up; the fastest is reported)")
	scaleUsers := fs.Int("scaleusers", 1_000_000, "scale row users K (coordinator-backed grid deployment)")
	scaleServers := fs.Int("scaleservers", 961, "scale row servers M (grid layout; 31x31 keeps the sweep's ~1000 users per server at K = 1M, so the provisioned workload stays meaningful)")
	scaleModels := fs.Int("scalemodels", 64, "scale row LoRA adapters I")
	scaleShards := fs.Int("scaleshards", 36, "scale row cell count")
	scaleCheckpoints := fs.Int("scalecheckpoints", 3, "timed checkpoints on the scale row (after one warm-up)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *checkpoints <= 0 || *rounds <= 0 {
		return fmt.Errorf("checkpoints and rounds must be positive, got %d and %d", *checkpoints, *rounds)
	}
	if *serveBench {
		// The serving sweep shares the shard benchmark's scenario dims.
		users, servers, models := *shardUsers, *shardServers, *shardModels
		counts := []int{1, 2, 4, 8}
		if *smoke {
			set := map[string]bool{}
			fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
			if !set["shardusers"] {
				users = 600
			}
			if !set["shardservers"] {
				servers = 12
			}
			if !set["shardmodels"] {
				models = 48
			}
			counts = []int{1, 2}
		}
		return runServe(stdout, users, servers, models, *serveRate, *serveCheckpoints, counts, *serveOut)
	}
	if *shardBench {
		users, servers, models := *shardUsers, *shardServers, *shardModels
		counts := []int{1, 2, 4, 8}
		scale := scaleSpec{
			Users:       *scaleUsers,
			Servers:     *scaleServers,
			Models:      *scaleModels,
			Shards:      *scaleShards,
			Checkpoints: *scaleCheckpoints,
		}
		if *smoke {
			// Toy dims proving the pipeline and schema in seconds.
			set := map[string]bool{}
			fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
			if !set["shardusers"] {
				users = 600
			}
			if !set["shardservers"] {
				servers = 12
			}
			if !set["shardmodels"] {
				models = 48
			}
			counts = []int{1, 2}
			if !set["scaleusers"] {
				scale.Users = 2000
			}
			if !set["scaleservers"] {
				scale.Servers = 16
			}
			if !set["scalemodels"] {
				scale.Models = 24
			}
			if !set["scaleshards"] {
				scale.Shards = 4
			}
			if !set["scalecheckpoints"] {
				scale.Checkpoints = 2
			}
		}
		return runShard(stdout, users, servers, models, *shardCheckpoints, counts, []scaleSpec{scale}, *shardOut)
	}
	newConfig := dynamics.NewLoRAScaleConfig
	if *smoke {
		newConfig = dynamics.NewSmokeScaleConfig
		// Shrink the defaults to seconds, but honor explicitly set flags.
		set := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["checkpoints"] {
			*checkpoints = 2
		}
		if !set["rounds"] {
			*rounds = 1
		}
	}

	var rep report
	cfg, err := newConfig(dynamics.Incremental)
	if err != nil {
		return err
	}
	rep.Scenario.Servers = cfg.Instance.NumServers()
	rep.Scenario.Users = cfg.Instance.NumUsers()
	rep.Scenario.Models = cfg.Instance.NumModels()
	rep.Scenario.CheckpointMin = cfg.CheckpointMin
	rep.Scenario.SlotS = cfg.SlotS

	// Each phase runs `rounds` rounds and keeps the fastest. Every round
	// gets a fresh engine with the same seed, so all rounds replay the
	// identical checkpoint sequence and the minimum is a clean filter for
	// scheduler and GC noise; a warm-up checkpoint first absorbs the
	// incremental mode's one-time threshold flip index build.
	warmEngine := func(mode dynamics.Mode) (*dynamics.Engine, error) {
		cfg, err := newConfig(mode)
		if err != nil {
			return nil, err
		}
		e, err := dynamics.NewEngine(cfg, rng.New(1))
		if err != nil {
			return nil, err
		}
		if _, _, err := e.ProfileCheckpoints(1, false); err != nil {
			return nil, err
		}
		runtime.GC()
		return e, nil
	}
	profile := func(mode dynamics.Mode, forceReplace bool) (refresh, repair time.Duration, err error) {
		for r := 0; r < *rounds; r++ {
			e, err := warmEngine(mode)
			if err != nil {
				return 0, 0, err
			}
			rf, rp, err := e.ProfileCheckpoints(*checkpoints, forceReplace)
			if err != nil {
				return 0, 0, err
			}
			if r == 0 || rf+rp < refresh+repair {
				refresh, repair = rf, rp
			}
		}
		return refresh, repair, nil
	}
	// Refresh is measured on its own pass: under the paper's protocol a
	// checkpoint normally only refreshes and measures, and interleaving
	// forced solves would pollute its cache behavior.
	rebRefresh, _, err := profile(dynamics.Rebuild, false)
	if err != nil {
		return err
	}
	incRefresh, _, err := profile(dynamics.Incremental, false)
	if err != nil {
		return err
	}
	rebRefresh2, rebRepair, err := profile(dynamics.Rebuild, true)
	if err != nil {
		return err
	}
	incRefresh2, incRepair, err := profile(dynamics.Incremental, true)
	if err != nil {
		return err
	}
	fill := func(p *phase, reb, inc time.Duration) {
		p.Ops = *checkpoints
		p.RebuildNs = reb.Nanoseconds() / int64(*checkpoints)
		p.IncrementalNs = inc.Nanoseconds() / int64(*checkpoints)
		if inc > 0 {
			p.Speedup = float64(reb) / float64(inc)
		}
	}
	fill(&rep.Refresh, rebRefresh, incRefresh)
	fill(&rep.Replace, rebRefresh2+rebRepair, incRefresh2+incRepair)

	timeline := func(mode dynamics.Mode) (time.Duration, error) {
		cfg, err := newConfig(mode)
		if err != nil {
			return 0, err
		}
		start := time.Now()
		if _, err := dynamics.Run(cfg, rng.New(2)); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}
	rebTimeline, err := timeline(dynamics.Rebuild)
	if err != nil {
		return err
	}
	incTimeline, err := timeline(dynamics.Incremental)
	if err != nil {
		return err
	}
	fill(&rep.Timeline, rebTimeline, incTimeline)

	if err := benchMeasurement(&rep.Measurement, warmEngine, cfg.Realizations, *checkpoints, *rounds, *smoke); err != nil {
		return err
	}
	if err := benchResolve(&rep.Resolve, warmEngine, *checkpoints, *rounds); err != nil {
		return err
	}

	rep.Speedup = rep.Refresh.Speedup
	rep.SpeedupDefinition = "per-checkpoint instance refresh (delta reachability update + evaluator reuse) vs full rebuild; replace and timeline_end_to_end report the forced-re-solve and measurement-included views; measurement and resolve isolate the fused fading kernel and the persistent commit heap"

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := validateReport(data); err != nil {
		return fmt.Errorf("emitted report fails schema validation: %w", err)
	}
	if *out == "-" {
		_, err = stdout.Write(data)
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "refresh %.2fx, replace %.2fx, timeline %.2fx, measurement %.2fx, resolve %.2fx -> %s\n",
		rep.Refresh.Speedup, rep.Replace.Speedup, rep.Timeline.Speedup,
		rep.Measurement.Speedup, rep.Resolve.Speedup, *out)
	return nil
}

// benchMeasurement times one checkpoint measurement (all realizations)
// through the realization-blocked fused kernel, the same kernel forced to
// per-realization sweeps (SetBlockSize(1)), and the two-pass reference, on
// the incremental engine's live instance — the instance every timeline
// measurement actually sees, threshold rank index included. All three
// paths produce bit-identical hit ratios (cross-checked here). Under
// -smoke the blocked path must also not fall behind the per-realization
// path (with a ×1.25 margin for toy-dimension jitter): that is the CI
// guard keeping the blocked sweep honest.
func benchMeasurement(out *kernelPhase, warmEngine func(dynamics.Mode) (*dynamics.Engine, error), realizations, ops, rounds int, smoke bool) error {
	e, err := warmEngine(dynamics.Incremental)
	if err != nil {
		return err
	}
	ins := e.Instance()
	eval, err := placement.NewEvaluator(ins)
	if err != nil {
		return err
	}
	placements := []*placement.Placement{e.Placement(0)}
	blocked := sim.NewFadingSession(ins, 0)
	perReal := sim.NewFadingSession(ins, 0)
	perReal.SetBlockSize(1)
	src := rng.New(3)
	fused, err := blocked.Evaluate(eval, placements, realizations, src)
	if err != nil {
		return err
	}
	single, err := perReal.Evaluate(eval, placements, realizations, src)
	if err != nil {
		return err
	}
	unfused, err := blocked.EvaluateUnfused(eval, placements, realizations, src)
	if err != nil {
		return err
	}
	if fused[0] != single[0] {
		return fmt.Errorf("blocked measurement %v differs from per-realization %v", fused[0], single[0])
	}
	if fused[0] != unfused[0] {
		return fmt.Errorf("fused measurement %v differs from two-pass %v", fused[0], unfused[0])
	}
	timePath := func(session *sim.FadingSession, unfusedPath bool) (time.Duration, error) {
		var fastest time.Duration
		for r := 0; r < rounds; r++ {
			start := time.Now()
			for n := 0; n < ops; n++ {
				var err error
				if unfusedPath {
					_, err = session.EvaluateUnfused(eval, placements, realizations, src)
				} else {
					_, err = session.Evaluate(eval, placements, realizations, src)
				}
				if err != nil {
					return 0, err
				}
			}
			if d := time.Since(start); r == 0 || d < fastest {
				fastest = d
			}
		}
		return fastest, nil
	}
	fastF, err := timePath(blocked, false)
	if err != nil {
		return err
	}
	fastP, err := timePath(perReal, false)
	if err != nil {
		return err
	}
	fastU, err := timePath(blocked, true)
	if err != nil {
		return err
	}
	// Mirror the session's auto split: GOMAXPROCS workers clamped to the
	// realization count, realizations divided evenly across them.
	workers := runtime.GOMAXPROCS(0)
	if workers > realizations {
		workers = realizations
	}
	out.Ops = ops
	out.Realizations = realizations
	out.BlockSize = (realizations + workers - 1) / workers
	out.FusedNs = fastF.Nanoseconds() / int64(ops)
	out.PerRealizationNs = fastP.Nanoseconds() / int64(ops)
	out.UnfusedNs = fastU.Nanoseconds() / int64(ops)
	if fastF > 0 {
		out.Speedup = float64(fastU) / float64(fastF)
		out.BlockedSpeedup = float64(fastP) / float64(fastF)
	}
	if smoke && fastF > fastP+fastP/4 {
		return fmt.Errorf("blocked measurement path (%v) fell behind the per-realization path (%v) beyond the smoke margin", fastF, fastP)
	}
	return nil
}

// smallDeltaStride is the resolve section's small-delta move rate: one
// user in this many is applied to the instance per checkpoint (~1%).
const smallDeltaStride = 100

// benchResolve times forced warm re-solves with the persistent commit heap
// carried across checkpoints vs the heap rebuilt per solve, on the
// full-move workload and on the ~1%-move small-delta workload. Engines in
// each pairing replay the identical checkpoint sequence.
func benchResolve(out *resolvePhase, warmEngine func(dynamics.Mode) (*dynamics.Engine, error), ops, rounds int) error {
	measure := func(stride int, rebuildHeap bool) (time.Duration, error) {
		var fastest time.Duration
		for r := 0; r < rounds; r++ {
			e, err := warmEngine(dynamics.Incremental)
			if err != nil {
				return 0, err
			}
			d, err := e.ProfileResolvesSubset(ops, stride, rebuildHeap)
			if err != nil {
				return 0, err
			}
			if r == 0 || d < fastest {
				fastest = d
			}
		}
		return fastest, nil
	}
	rebuilt, err := measure(1, true)
	if err != nil {
		return err
	}
	persistent, err := measure(1, false)
	if err != nil {
		return err
	}
	sdRebuilt, err := measure(smallDeltaStride, true)
	if err != nil {
		return err
	}
	sdPersistent, err := measure(smallDeltaStride, false)
	if err != nil {
		return err
	}
	out.Ops = ops
	out.HeapRebuildNs = rebuilt.Nanoseconds() / int64(ops)
	out.PersistentNs = persistent.Nanoseconds() / int64(ops)
	if persistent > 0 {
		out.Speedup = float64(rebuilt) / float64(persistent)
	}
	out.SmallDeltaStride = smallDeltaStride
	out.SmallDeltaHeapRebuildNs = sdRebuilt.Nanoseconds() / int64(ops)
	out.SmallDeltaPersistentNs = sdPersistent.Nanoseconds() / int64(ops)
	if sdPersistent > 0 {
		out.SmallDeltaSpeedup = float64(sdRebuilt) / float64(sdPersistent)
	}
	return nil
}

// fieldSpec is one required numeric field of a documented JSON schema.
type fieldSpec struct {
	path string
	min  float64
}

// reportSchema lists every numeric field the documented BENCH_dynamics.json
// schema requires, with its minimum legal value. Validation reads the
// emitted bytes, not the in-memory struct, so field renames that desync
// docs and emitter fail loudly.
var reportSchema = []fieldSpec{
	{"scenario.servers", 1},
	{"scenario.users", 1},
	{"scenario.models", 1},
	{"scenario.checkpointMin", 1},
	{"scenario.slotS", 0.000001},
	{"refresh.ops", 1},
	{"refresh.rebuild_ns_per_op", 1},
	{"refresh.incremental_ns_per_op", 1},
	{"refresh.speedup", 0.000001},
	{"replace.ops", 1},
	{"replace.rebuild_ns_per_op", 1},
	{"replace.incremental_ns_per_op", 1},
	{"replace.speedup", 0.000001},
	{"timeline_end_to_end.ops", 1},
	{"timeline_end_to_end.rebuild_ns_per_op", 1},
	{"timeline_end_to_end.incremental_ns_per_op", 1},
	{"timeline_end_to_end.speedup", 0.000001},
	{"measurement.ops", 1},
	{"measurement.realizations", 1},
	{"measurement.block_size", 1},
	{"measurement.fused_ns_per_op", 1},
	{"measurement.per_realization_ns_per_op", 1},
	{"measurement.unfused_ns_per_op", 1},
	{"measurement.speedup", 0.000001},
	{"measurement.blocked_speedup", 0.000001},
	{"resolve.ops", 1},
	{"resolve.heap_rebuild_ns_per_op", 1},
	{"resolve.persistent_ns_per_op", 1},
	{"resolve.speedup", 0.000001},
	{"resolve.small_delta_stride", 2},
	{"resolve.small_delta_heap_rebuild_ns_per_op", 1},
	{"resolve.small_delta_persistent_ns_per_op", 1},
	{"resolve.small_delta_speedup", 0.000001},
	{"speedup", 0.000001},
}

// validateReport checks the emitted JSON against the documented schema:
// every required section and field present, numeric, and at least its
// minimum (zero-op or zero-duration sections indicate broken plumbing,
// not fast code). Non-finite values never reach this point: Go's JSON
// encoder rejects NaN and ±Inf at marshal time, so a NaN speedup fails
// the run there, and json.Unmarshal cannot produce them from valid JSON.
func validateReport(data []byte) error {
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	if err := checkFields(doc, reportSchema); err != nil {
		return err
	}
	if _, ok := doc["speedup_definition"].(string); !ok {
		return fmt.Errorf("speedup_definition: missing or not a string")
	}
	return nil
}

// checkFields validates one decoded JSON object against a schema table:
// every dotted path present, numeric, and at least its minimum.
func checkFields(doc map[string]any, schema []fieldSpec) error {
	for _, f := range schema {
		node := any(doc)
		path := f.path
		for {
			obj, ok := node.(map[string]any)
			if !ok {
				return fmt.Errorf("%s: parent is not an object", f.path)
			}
			key, rest, nested := strings.Cut(path, ".")
			child, ok := obj[key]
			if !ok {
				return fmt.Errorf("%s: missing field %q", f.path, key)
			}
			if nested {
				node, path = child, rest
				continue
			}
			v, ok := child.(float64)
			if !ok {
				return fmt.Errorf("%s: not a number", f.path)
			}
			if v < f.min {
				return fmt.Errorf("%s: %v below minimum %v", f.path, v, f.min)
			}
			break
		}
	}
	return nil
}
