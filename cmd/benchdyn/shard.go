package main

// The -shard section: scale the dynamics timeline out to BENCH_shard.json
// dimensions (K = 100k users, M = 100 servers by default) and compare the
// sharded multi-cell engine at 1/2/4/8 cells against the unsharded engine
// on the same deployment, workload, and walk. Per-checkpoint latency is
// the full loop — walk, membership plan, instance refresh, fused fading
// measurement, and any triggered re-placements — reported as the fastest
// of the timed checkpoints after one untimed warm-up (flip-index builds
// amortize across a timeline; the min filters page-fault storms that hit
// freshly built multi-GB engines). Like the dynamics report, the emitted
// JSON is schema-validated before it is written.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime/debug"
	"time"

	"trimcaching/internal/dynamics"
	"trimcaching/internal/rng"
	"trimcaching/internal/shard"
)

// shardRun is one engine configuration's measurements.
type shardRun struct {
	// Shards is the cell count; 0 marks the unsharded dynamics engine.
	Shards int `json:"shards"`
	// Checkpoints is the timed checkpoint count (after one warm-up).
	Checkpoints int `json:"checkpoints"`
	// CheckpointNs is the fastest timed checkpoint's end-to-end wall time —
	// the same min-filter the dynamics benchmark applies to rounds, which
	// rejects transient page-fault and scheduler noise (multi-GB engines on
	// a shared box fault storms into early checkpoints).
	CheckpointNs int64 `json:"checkpoint_ns_per_op"`
	// ThroughputUsersPerS is users per second of the fastest checkpoint.
	ThroughputUsersPerS float64 `json:"throughput_users_per_s"`
	// Speedup is the unsharded per-checkpoint time over this run's.
	Speedup float64 `json:"speedup"`
	// HitRatioMean averages the (aggregate) hit ratio over the timed
	// checkpoints — the quality cost of cell autonomy, next to its speed.
	HitRatioMean float64 `json:"hit_ratio_mean"`
	// Handoffs and Grows count cross-cell ownership transfers and
	// slot-table rebuilds over the timed checkpoints (0 when unsharded).
	Handoffs int `json:"handoffs"`
	Grows    int `json:"grows"`
}

type shardReport struct {
	Scenario struct {
		Servers       int     `json:"servers"`
		Users         int     `json:"users"`
		Models        int     `json:"models"`
		CheckpointMin int     `json:"checkpointMin"`
		SlotS         float64 `json:"slotS"`
		Realizations  int     `json:"realizations"`
	} `json:"scenario"`
	// Unsharded is the single whole-area engine baseline.
	Unsharded shardRun `json:"unsharded"`
	// Sharded holds one entry per cell count, ascending.
	Sharded []shardRun `json:"sharded"`
	// Speedup is the headline number: the largest cell count's speedup.
	Speedup           float64 `json:"speedup"`
	SpeedupDefinition string  `json:"speedup_definition"`
}

// shardRunSchema validates one shardRun object (speedup checked on the
// sharded entries only; the unsharded baseline's is 1 by construction).
var shardRunSchema = []fieldSpec{
	{"shards", 0},
	{"checkpoints", 1},
	{"checkpoint_ns_per_op", 1},
	{"throughput_users_per_s", 0.000001},
	{"hit_ratio_mean", 0.000001},
}

var shardTopSchema = []fieldSpec{
	{"scenario.servers", 1},
	{"scenario.users", 1},
	{"scenario.models", 1},
	{"scenario.checkpointMin", 1},
	{"scenario.slotS", 0.000001},
	{"scenario.realizations", 1},
	{"speedup", 0.000001},
}

// runShard executes the shard scale benchmark and writes the report.
func runShard(stdout io.Writer, users, servers, models, checkpoints int, counts []int, out string) error {
	if checkpoints <= 0 {
		return fmt.Errorf("shard checkpoints must be positive, got %d", checkpoints)
	}
	var rep shardReport

	// Unsharded baseline: same construction, Shards = 1 semantics, driven
	// through the plain engine (Advance/Refresh/Step).
	base, err := shard.NewBenchConfig(users, servers, models, 1)
	if err != nil {
		return err
	}
	rep.Scenario.Servers = servers
	rep.Scenario.Users = users
	rep.Scenario.Models = models
	rep.Scenario.CheckpointMin = base.CheckpointMin
	rep.Scenario.SlotS = base.SlotS
	rep.Scenario.Realizations = base.Realizations
	eng, err := dynamics.NewEngine(dynamics.Config{
		Instance:      base.Instance,
		Capacities:    base.Capacities,
		Tracks:        base.Tracks,
		DurationMin:   base.DurationMin,
		CheckpointMin: base.CheckpointMin,
		SlotS:         base.SlotS,
		Realizations:  base.Realizations,
		Mode:          dynamics.Incremental,
	}, rng.New(1))
	if err != nil {
		return err
	}
	unshardedStep := func(cp int) (float64, error) {
		if err := eng.Advance(); err != nil {
			return 0, err
		}
		if err := eng.Refresh(); err != nil {
			return 0, err
		}
		st, err := eng.Step(cp)
		if err != nil {
			return 0, err
		}
		return st.HitRatio[0], nil
	}
	if _, err := unshardedStep(1); err != nil { // warm-up: flip index build
		return err
	}
	var hitSum float64
	var baseDur time.Duration
	for cp := 2; cp <= checkpoints+1; cp++ {
		start := time.Now()
		hr, err := unshardedStep(cp)
		if err != nil {
			return err
		}
		if d := time.Since(start); cp == 2 || d < baseDur {
			baseDur = d
		}
		hitSum += hr
	}
	rep.Unsharded = shardRun{
		Shards:              0,
		Checkpoints:         checkpoints,
		CheckpointNs:        baseDur.Nanoseconds(),
		ThroughputUsersPerS: float64(users) / baseDur.Seconds(),
		Speedup:             1,
		HitRatioMean:        hitSum / float64(checkpoints),
	}
	eng = nil
	base = shard.Config{}
	debug.FreeOSMemory()
	fmt.Fprintf(stdout, "unsharded: %v/checkpoint\n", time.Duration(rep.Unsharded.CheckpointNs))

	for _, n := range counts {
		cfg, err := shard.NewBenchConfig(users, servers, models, n)
		if err != nil {
			return err
		}
		se, err := shard.NewEngine(cfg, rng.New(1))
		if err != nil {
			return err
		}
		if _, err := se.Checkpoint(1); err != nil { // warm-up
			return err
		}
		warmHandoffs, warmGrows := se.Handoffs(), se.Grows()
		var hits float64
		var dur time.Duration
		for cp := 2; cp <= checkpoints+1; cp++ {
			start := time.Now()
			st, err := se.Checkpoint(cp)
			if err != nil {
				return err
			}
			if d := time.Since(start); cp == 2 || d < dur {
				dur = d
			}
			hits += st.HitRatio[0]
		}
		run := shardRun{
			Shards:              n,
			Checkpoints:         checkpoints,
			CheckpointNs:        dur.Nanoseconds(),
			ThroughputUsersPerS: float64(users) / dur.Seconds(),
			HitRatioMean:        hits / float64(checkpoints),
			Handoffs:            se.Handoffs() - warmHandoffs,
			Grows:               se.Grows() - warmGrows,
		}
		if dur > 0 {
			run.Speedup = float64(baseDur) / float64(dur)
		}
		rep.Sharded = append(rep.Sharded, run)
		fmt.Fprintf(stdout, "%d shards: %v/checkpoint (%.2fx, hit %.4f vs %.4f, %d handoffs)\n",
			n, time.Duration(run.CheckpointNs), run.Speedup, run.HitRatioMean,
			rep.Unsharded.HitRatioMean, run.Handoffs)
		se = nil
		cfg = shard.Config{}
		debug.FreeOSMemory()
	}
	rep.Speedup = rep.Sharded[len(rep.Sharded)-1].Speedup
	rep.SpeedupDefinition = "end-to-end per-checkpoint wall time (walk + membership plan + instance refresh + fused fading measurement + triggered re-placements) of the unsharded dynamics engine over the sharded multi-cell engine at the largest cell count; hit_ratio_mean reports the quality cost of cell-autonomous placement and serving"

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := validateShardReport(data); err != nil {
		return fmt.Errorf("emitted shard report fails schema validation: %w", err)
	}
	if out == "-" {
		_, err = stdout.Write(data)
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "shard speedup %.2fx at %d shards -> %s\n",
		rep.Speedup, rep.Sharded[len(rep.Sharded)-1].Shards, out)
	return nil
}

// validateShardReport checks the emitted BENCH_shard.json bytes against
// the documented schema (docs/BENCHMARKS.md): top-level scenario and
// speedup fields, an unsharded baseline, and at least one sharded entry,
// each with every per-run field present and sane.
func validateShardReport(data []byte) error {
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	if err := checkFields(doc, shardTopSchema); err != nil {
		return err
	}
	if _, ok := doc["speedup_definition"].(string); !ok {
		return fmt.Errorf("speedup_definition: missing or not a string")
	}
	un, ok := doc["unsharded"].(map[string]any)
	if !ok {
		return fmt.Errorf("unsharded: missing or not an object")
	}
	if err := checkFields(un, shardRunSchema); err != nil {
		return fmt.Errorf("unsharded: %w", err)
	}
	runs, ok := doc["sharded"].([]any)
	if !ok || len(runs) == 0 {
		return fmt.Errorf("sharded: missing or empty")
	}
	for i, r := range runs {
		obj, ok := r.(map[string]any)
		if !ok {
			return fmt.Errorf("sharded[%d]: not an object", i)
		}
		if err := checkFields(obj, shardRunSchema); err != nil {
			return fmt.Errorf("sharded[%d]: %w", i, err)
		}
		if v, _ := obj["speedup"].(float64); v < 0.000001 {
			return fmt.Errorf("sharded[%d]: speedup %v below minimum", i, v)
		}
	}
	return nil
}
