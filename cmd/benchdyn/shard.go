package main

// The -shard section: scale the dynamics timeline out to BENCH_shard.json
// dimensions (K = 100k users, M = 100 servers by default) and compare the
// sharded multi-cell engine at 1/2/4/8 cells against the unsharded engine
// on the same deployment, workload, and walk. Per-checkpoint latency is
// the full loop — walk, membership plan, instance refresh, fused fading
// measurement, and any triggered re-placements — reported as the fastest
// of the timed checkpoints after one untimed warm-up (flip-index builds
// amortize across a timeline; the min filters page-fault storms that hit
// freshly built multi-GB engines). The main rows pin every worker pool to
// one goroutine so the numbers compare across machines; a second sweep at
// Workers = max(2, NumCPU) reports the multi-core scaling curve, with
// speedups still against the single-core unsharded baseline. Like the
// dynamics report, the emitted JSON is schema-validated before it is
// written.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"trimcaching/internal/dynamics"
	"trimcaching/internal/rng"
	"trimcaching/internal/shard"
)

// shardRun is one engine configuration's measurements.
type shardRun struct {
	// Shards is the cell count; 0 marks the unsharded dynamics engine.
	Shards int `json:"shards"`
	// Workers is the worker-pool bound the row ran with: 1 on the main
	// rows (pinned single-core, comparable across machines), max(2,
	// NumCPU) in the multicore section.
	Workers int `json:"workers"`
	// Checkpoints is the timed checkpoint count (after one warm-up).
	Checkpoints int `json:"checkpoints"`
	// CheckpointNs is the fastest timed checkpoint's end-to-end wall time —
	// the same min-filter the dynamics benchmark applies to rounds, which
	// rejects transient page-fault and scheduler noise (multi-GB engines on
	// a shared box fault storms into early checkpoints).
	CheckpointNs int64 `json:"checkpoint_ns_per_op"`
	// ThroughputUsersPerS is users per second of the fastest checkpoint.
	ThroughputUsersPerS float64 `json:"throughput_users_per_s"`
	// Speedup is the single-core unsharded per-checkpoint time over this
	// run's (every row, multicore included, shares that one baseline).
	Speedup float64 `json:"speedup"`
	// HitRatioMean averages the (aggregate) hit ratio over the timed
	// checkpoints — the quality cost of cell autonomy, next to its speed.
	HitRatioMean float64 `json:"hit_ratio_mean"`
	// Handoffs and Grows count cross-cell ownership transfers and
	// slot-table rebuilds over the timed checkpoints (0 when unsharded).
	Handoffs int `json:"handoffs"`
	Grows    int `json:"grows"`
}

// shardScenario is the shard report's scenario header.
type shardScenario struct {
	Servers       int     `json:"servers"`
	Users         int     `json:"users"`
	Models        int     `json:"models"`
	CheckpointMin int     `json:"checkpointMin"`
	SlotS         float64 `json:"slotS"`
	Realizations  int     `json:"realizations"`
}

type shardReport struct {
	Scenario shardScenario `json:"scenario"`
	// Unsharded is the single whole-area engine baseline (Workers = 1).
	Unsharded shardRun `json:"unsharded"`
	// Sharded holds one entry per cell count, ascending (Workers = 1).
	Sharded []shardRun `json:"sharded"`
	// Multicore repeats the sweep with Workers = max(2, NumCPU). On a
	// single-core host the curve is flat by construction — the rows then
	// document pool-scheduling overhead rather than parallel speedup.
	Multicore struct {
		Workers   int        `json:"workers"`
		Unsharded shardRun   `json:"unsharded"`
		Sharded   []shardRun `json:"sharded"`
	} `json:"multicore"`
	// Scale holds the memory-accounted scale rows (see scale.go), headlined
	// by the K = 1M configuration. Scale rows run on a planned-grid
	// deployment behind a coordinator global instance, so they are not
	// point-comparable with the uniform-layout sweep rows above.
	Scale []scaleRun `json:"scale"`
	// Speedup is the headline number: the largest cell count's single-core
	// speedup.
	Speedup           float64 `json:"speedup"`
	SpeedupDefinition string  `json:"speedup_definition"`
}

// shardRunSchema validates one shardRun object (speedup checked on the
// sharded entries only; the unsharded baseline's is 1 by construction).
var shardRunSchema = []fieldSpec{
	{"shards", 0},
	{"workers", 1},
	{"checkpoints", 1},
	{"checkpoint_ns_per_op", 1},
	{"throughput_users_per_s", 0.000001},
	{"hit_ratio_mean", 0.000001},
}

var shardTopSchema = []fieldSpec{
	{"scenario.servers", 1},
	{"scenario.users", 1},
	{"scenario.models", 1},
	{"scenario.checkpointMin", 1},
	{"scenario.slotS", 0.000001},
	{"scenario.realizations", 1},
	{"multicore.workers", 2},
	{"speedup", 0.000001},
}

// shardSweep runs the unsharded baseline and one engine per cell count,
// all with the given worker-pool bound, and returns their rows. baseNs is
// the reference per-checkpoint time every speedup divides; 0 means use
// this sweep's own unsharded time (and report its speedup as exactly 1).
func shardSweep(stdout io.Writer, scen *shardScenario, users, servers, models, checkpoints, workers int, counts []int, baseNs int64) (shardRun, []shardRun, error) {
	// Unsharded baseline: same construction, Shards = 1 semantics, driven
	// through the plain engine (Advance/Refresh/Step).
	base, err := shard.NewBenchConfig(users, servers, models, 1)
	if err != nil {
		return shardRun{}, nil, err
	}
	if scen != nil {
		scen.Servers = servers
		scen.Users = users
		scen.Models = models
		scen.CheckpointMin = base.CheckpointMin
		scen.SlotS = base.SlotS
		scen.Realizations = base.Realizations
	}
	eng, err := dynamics.NewEngine(dynamics.Config{
		Instance:      base.Instance,
		Capacities:    base.Capacities,
		Tracks:        base.Tracks,
		DurationMin:   base.DurationMin,
		CheckpointMin: base.CheckpointMin,
		SlotS:         base.SlotS,
		Realizations:  base.Realizations,
		Workers:       workers,
		Mode:          dynamics.Incremental,
	}, rng.New(1))
	if err != nil {
		return shardRun{}, nil, err
	}
	unshardedStep := func(cp int) (float64, error) {
		if err := eng.Advance(); err != nil {
			return 0, err
		}
		if err := eng.Refresh(); err != nil {
			return 0, err
		}
		st, err := eng.Step(cp)
		if err != nil {
			return 0, err
		}
		return st.HitRatio[0], nil
	}
	if _, err := unshardedStep(1); err != nil { // warm-up: flip index build
		return shardRun{}, nil, err
	}
	var hitSum float64
	var baseDur time.Duration
	for cp := 2; cp <= checkpoints+1; cp++ {
		start := time.Now()
		hr, err := unshardedStep(cp)
		if err != nil {
			return shardRun{}, nil, err
		}
		if d := time.Since(start); cp == 2 || d < baseDur {
			baseDur = d
		}
		hitSum += hr
	}
	un := shardRun{
		Shards:              0,
		Workers:             workers,
		Checkpoints:         checkpoints,
		CheckpointNs:        baseDur.Nanoseconds(),
		ThroughputUsersPerS: float64(users) / baseDur.Seconds(),
		Speedup:             1,
		HitRatioMean:        hitSum / float64(checkpoints),
	}
	if baseNs == 0 {
		baseNs = un.CheckpointNs
	} else if un.CheckpointNs > 0 {
		un.Speedup = float64(baseNs) / float64(un.CheckpointNs)
	}
	eng = nil
	base = shard.Config{}
	debug.FreeOSMemory()
	fmt.Fprintf(stdout, "unsharded (workers=%d): %v/checkpoint\n", workers, time.Duration(un.CheckpointNs))

	var runs []shardRun
	for _, n := range counts {
		cfg, err := shard.NewBenchConfig(users, servers, models, n)
		if err != nil {
			return shardRun{}, nil, err
		}
		cfg.Workers = workers
		if workers == 1 {
			// Pin the per-cell fading evaluation too; the default would
			// already resolve to 1 on a single-core host, but the row
			// promises single-core on every machine.
			cfg.MeasureWorkers = 1
		}
		se, err := shard.NewEngine(cfg, rng.New(1))
		if err != nil {
			return shardRun{}, nil, err
		}
		if _, err := se.Checkpoint(1); err != nil { // warm-up
			return shardRun{}, nil, err
		}
		warmHandoffs, warmGrows := se.Handoffs(), se.Grows()
		var hits float64
		var dur time.Duration
		for cp := 2; cp <= checkpoints+1; cp++ {
			start := time.Now()
			st, err := se.Checkpoint(cp)
			if err != nil {
				return shardRun{}, nil, err
			}
			if d := time.Since(start); cp == 2 || d < dur {
				dur = d
			}
			hits += st.HitRatio[0]
		}
		run := shardRun{
			Shards:              n,
			Workers:             workers,
			Checkpoints:         checkpoints,
			CheckpointNs:        dur.Nanoseconds(),
			ThroughputUsersPerS: float64(users) / dur.Seconds(),
			HitRatioMean:        hits / float64(checkpoints),
			Handoffs:            se.Handoffs() - warmHandoffs,
			Grows:               se.Grows() - warmGrows,
		}
		if dur > 0 {
			run.Speedup = float64(baseNs) / float64(dur)
		}
		runs = append(runs, run)
		fmt.Fprintf(stdout, "%d shards (workers=%d): %v/checkpoint (%.2fx, hit %.4f vs %.4f, %d handoffs)\n",
			n, workers, time.Duration(run.CheckpointNs), run.Speedup, run.HitRatioMean,
			un.HitRatioMean, run.Handoffs)
		se = nil
		cfg = shard.Config{}
		debug.FreeOSMemory()
	}
	return un, runs, nil
}

// runShard executes the shard scale benchmark — the single-core and
// multicore comparison sweeps plus one memory-accounted scale row per spec
// — and writes the report.
func runShard(stdout io.Writer, users, servers, models, checkpoints int, counts []int, scales []scaleSpec, out string) error {
	if checkpoints <= 0 {
		return fmt.Errorf("shard checkpoints must be positive, got %d", checkpoints)
	}
	var rep shardReport

	un, runs, err := shardSweep(stdout, &rep.Scenario, users, servers, models, checkpoints, 1, counts, 0)
	if err != nil {
		return err
	}
	rep.Unsharded = un
	rep.Sharded = runs

	mcWorkers := runtime.NumCPU()
	if mcWorkers < 2 {
		mcWorkers = 2
	}
	mcUn, mcRuns, err := shardSweep(stdout, nil, users, servers, models, checkpoints, mcWorkers, counts, un.CheckpointNs)
	if err != nil {
		return err
	}
	rep.Multicore.Workers = mcWorkers
	rep.Multicore.Unsharded = mcUn
	rep.Multicore.Sharded = mcRuns

	for _, spec := range scales {
		row, err := runScale(stdout, spec)
		if err != nil {
			return err
		}
		rep.Scale = append(rep.Scale, row)
	}

	rep.Speedup = rep.Sharded[len(rep.Sharded)-1].Speedup
	rep.SpeedupDefinition = "end-to-end per-checkpoint wall time (walk + membership plan + instance refresh + fused fading measurement + triggered re-placements) of the unsharded dynamics engine over the sharded multi-cell engine at the largest cell count, all worker pools pinned to one goroutine; the multicore section repeats the sweep with workers = max(2, NumCPU), speedups still against the single-core unsharded baseline; hit_ratio_mean reports the quality cost of cell-autonomous placement and serving"

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := validateShardReport(data); err != nil {
		return fmt.Errorf("emitted shard report fails schema validation: %w", err)
	}
	if out == "-" {
		_, err = stdout.Write(data)
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "shard speedup %.2fx at %d shards -> %s\n",
		rep.Speedup, rep.Sharded[len(rep.Sharded)-1].Shards, out)
	return nil
}

// checkShardRuns validates one {unsharded, sharded[]} group of a shard
// report: the baseline present with every per-run field sane, at least one
// sharded entry, and a positive speedup on each sharded row.
func checkShardRuns(doc map[string]any, label string) error {
	un, ok := doc["unsharded"].(map[string]any)
	if !ok {
		return fmt.Errorf("%sunsharded: missing or not an object", label)
	}
	if err := checkFields(un, shardRunSchema); err != nil {
		return fmt.Errorf("%sunsharded: %w", label, err)
	}
	runs, ok := doc["sharded"].([]any)
	if !ok || len(runs) == 0 {
		return fmt.Errorf("%ssharded: missing or empty", label)
	}
	for i, r := range runs {
		obj, ok := r.(map[string]any)
		if !ok {
			return fmt.Errorf("%ssharded[%d]: not an object", label, i)
		}
		if err := checkFields(obj, shardRunSchema); err != nil {
			return fmt.Errorf("%ssharded[%d]: %w", label, i, err)
		}
		if v, _ := obj["speedup"].(float64); v < 0.000001 {
			return fmt.Errorf("%ssharded[%d]: speedup %v below minimum", label, i, v)
		}
	}
	return nil
}

// validateShardReport checks the emitted BENCH_shard.json bytes against
// the documented schema (docs/BENCHMARKS.md): top-level scenario and
// speedup fields, the single-core unsharded baseline and sharded entries,
// the multicore section's own baseline and entries, and the scale section.
// A scale row whose bytes_per_user or allocs_per_checkpoint is missing,
// zero, or non-numeric fails the run — those are the fields the section
// exists to publish, and a zero means the accounting seam broke.
func validateShardReport(data []byte) error {
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	if err := checkFields(doc, shardTopSchema); err != nil {
		return err
	}
	if _, ok := doc["speedup_definition"].(string); !ok {
		return fmt.Errorf("speedup_definition: missing or not a string")
	}
	if err := checkShardRuns(doc, ""); err != nil {
		return err
	}
	mc, ok := doc["multicore"].(map[string]any)
	if !ok {
		return fmt.Errorf("multicore: missing or not an object")
	}
	if err := checkShardRuns(mc, "multicore."); err != nil {
		return err
	}
	rows, ok := doc["scale"].([]any)
	if !ok || len(rows) == 0 {
		return fmt.Errorf("scale: missing or empty")
	}
	for i, r := range rows {
		obj, ok := r.(map[string]any)
		if !ok {
			return fmt.Errorf("scale[%d]: not an object", i)
		}
		if err := checkFields(obj, scaleRunSchema); err != nil {
			return fmt.Errorf("scale[%d]: %w", i, err)
		}
		// The footprint total must actually be the component sum — a
		// desync means a component was added without threading it through.
		fp := obj["footprint"].(map[string]any)
		var sum float64
		for _, v := range fp {
			if n, ok := v.(float64); ok {
				sum += n
			}
		}
		if total, _ := obj["footprint_total_bytes"].(float64); total != sum {
			return fmt.Errorf("scale[%d]: footprint_total_bytes %v is not the component sum %v", i, total, sum)
		}
	}
	return nil
}
