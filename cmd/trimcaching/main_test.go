package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig4a", "fig6b", "fig7", "ablate-epsilon", "usage"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("list output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunMissingCommand(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("missing command must error")
	}
	if !strings.Contains(out.String(), "usage") {
		t.Fatal("usage not printed")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"fig99"}, &out); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"fig6a", "-topologies", "x"}, &out); err == nil {
		t.Fatal("bad flag must error")
	}
}

func TestRunFig6aTiny(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"fig6a", "-topologies", "2", "-realizations", "10", "-pool", "10"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig. 6(a)", "TrimCaching Gen", "Optimal (exhaustive)", "faster than"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunChartFlag(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"fig1", "-chart", "-topologies", "2", "-realizations", "10"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "x: frozen layers") {
		t.Fatalf("chart missing:\n%s", out.String())
	}
}

func TestRunOutFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "results.txt")
	var out bytes.Buffer
	err := run([]string{"fig1", "-out", path, "-topologies", "2", "-realizations", "10"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Fig. 1") {
		t.Fatalf("output file missing results: %s", data)
	}
}
