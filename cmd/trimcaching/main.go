// Command trimcaching regenerates the paper's tables and figures.
//
// Usage:
//
//	trimcaching list
//	trimcaching <experiment> [flags]
//	trimcaching all [flags]
//
// Experiments: fig1, fig4a, fig4b, fig4c, fig5a, fig5b, fig5c, fig6a,
// fig6b, fig7, ablate-epsilon, ablate-zipf, ablate-sharing, ablate-lazy.
//
// Flags mirror §VII-A fidelity knobs: -topologies (paper: 100),
// -realizations (paper: >1000), -seed, -epsilon, -models, -pool, -workers,
// and -out to tee results to a file.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"trimcaching/internal/experiments"
	"trimcaching/internal/plot"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "trimcaching:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	if len(args) == 0 {
		usage(stdout)
		return fmt.Errorf("missing command")
	}
	cmd := args[0]
	if cmd == "list" || cmd == "help" || cmd == "-h" || cmd == "--help" {
		usage(stdout)
		return nil
	}

	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	opt := experiments.DefaultOptions()
	topologies := fs.Int("topologies", opt.Topologies, "random network topologies per point (paper: 100)")
	realizations := fs.Int("realizations", opt.Realizations, "Rayleigh fading realizations per topology (paper: >1000)")
	workers := fs.Int("workers", 0, "parallel trial workers (0 = GOMAXPROCS)")
	seed := fs.Uint64("seed", opt.Seed, "root random seed")
	epsilon := fs.Float64("epsilon", opt.Epsilon, "TrimCaching Spec rounding epsilon")
	models := fs.Int("models", opt.LibraryModels, "library size I used for placement")
	pool := fs.Int("pool", opt.LibraryPoolPerFamily, "per-family pool the library is drawn from")
	out := fs.String("out", "", "also append rendered results to this file")
	chart := fs.Bool("chart", false, "render an ASCII chart under each table")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	opt.Topologies = *topologies
	opt.Realizations = *realizations
	opt.Workers = *workers
	opt.Seed = *seed
	opt.Epsilon = *epsilon
	opt.LibraryModels = *models
	opt.LibraryPoolPerFamily = *pool

	var runners []experiments.Runner
	if cmd == "all" {
		runners = experiments.All()
	} else {
		r, err := experiments.ByName(cmd)
		if err != nil {
			usage(stdout)
			return err
		}
		runners = []experiments.Runner{r}
	}

	var sink io.Writer = stdout
	if *out != "" {
		f, err := os.OpenFile(*out, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("open output file: %w", err)
		}
		defer f.Close()
		sink = io.MultiWriter(stdout, f)
	}

	for _, r := range runners {
		start := time.Now()
		tbl, err := r.Run(opt)
		if err != nil {
			return fmt.Errorf("%s: %w", r.Name, err)
		}
		fmt.Fprintf(sink, "%s\n(%s, %v, topologies=%d realizations=%d seed=%d)\n\n",
			tbl.Render(), r.Name, time.Since(start).Round(time.Millisecond),
			opt.Topologies, opt.Realizations, opt.Seed)
		if *chart {
			rendered, err := plot.Chart(tbl, 72, 20)
			if err != nil {
				return fmt.Errorf("%s: chart: %w", r.Name, err)
			}
			fmt.Fprintf(sink, "%s\n", rendered)
		}
	}
	return nil
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: trimcaching <experiment|all|list> [flags]")
	fmt.Fprintln(w, "experiments:")
	for _, r := range experiments.All() {
		fmt.Fprintf(w, "  %-16s %s\n", r.Name, r.Description)
	}
	fmt.Fprintln(w, "flags: -topologies -realizations -workers -seed -epsilon -models -pool -out")
}
