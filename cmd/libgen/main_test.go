package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"trimcaching/internal/modellib"
)

func TestRunSpecial(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-kind", "special", "-per-family", "5"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"models:          15", "sharing ratio:", "families:        3"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunGeneralAndLoRA(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-kind", "general"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "models:          279") {
		t.Fatalf("general library size:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-kind", "lora", "-adapters", "7"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "models:          7") {
		t.Fatalf("lora library size:\n%s", out.String())
	}
}

func TestRunTake(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-kind", "special", "-per-family", "10", "-take", "9"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "models:          9") {
		t.Fatalf("take output:\n%s", out.String())
	}
}

func TestRunUnknownKind(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-kind", "nope"}, &out); err == nil {
		t.Fatal("unknown kind must error")
	}
}

func TestRunWritesValidJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "lib.json")
	var out bytes.Buffer
	if err := run([]string{"-kind", "special", "-per-family", "3", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var lib modellib.Library
	if err := json.Unmarshal(data, &lib); err != nil {
		t.Fatalf("written library does not round-trip: %v", err)
	}
	if lib.NumModels() != 9 {
		t.Fatalf("round-tripped library has %d models", lib.NumModels())
	}
}
