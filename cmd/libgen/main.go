// Command libgen generates parameter-sharing model libraries and prints
// their sharing statistics, optionally dumping the full library as JSON.
//
// Usage:
//
//	libgen -kind special -per-family 100 -o library.json
//	libgen -kind general
//	libgen -kind lora -adapters 100
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"trimcaching/internal/libgen"
	"trimcaching/internal/modellib"
	"trimcaching/internal/rng"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "libgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("libgen", flag.ContinueOnError)
	kind := fs.String("kind", "special", "library kind: special, general, or lora")
	perFamily := fs.Int("per-family", 100, "models per backbone family (special case)")
	adapters := fs.Int("adapters", 100, "downstream adapters (lora)")
	take := fs.Int("take", 0, "sample this many models (0 = keep all)")
	seed := fs.Uint64("seed", 1, "random seed")
	out := fs.String("o", "", "write library JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		lib *modellib.Library
		err error
	)
	switch *kind {
	case "special":
		lib, err = libgen.GenerateSpecial(libgen.DefaultSpecialConfig(*perFamily), rng.New(*seed))
	case "general":
		lib, err = libgen.GenerateGeneral(libgen.DefaultGeneralConfig(), rng.New(*seed))
	case "lora":
		lib, err = libgen.GenerateLoRA(libgen.DefaultLoRAConfig(*adapters))
	default:
		return fmt.Errorf("unknown kind %q (want special, general, or lora)", *kind)
	}
	if err != nil {
		return err
	}
	if *take > 0 {
		lib, err = libgen.TakeStratified(lib, *take, rng.New(*seed).Split("take"))
		if err != nil {
			return err
		}
	}

	st := lib.Stats()
	fmt.Fprintf(stdout, "kind:            %s\n", *kind)
	fmt.Fprintf(stdout, "models:          %d\n", st.NumModels)
	fmt.Fprintf(stdout, "blocks:          %d (%d shared)\n", st.NumBlocks, st.NumSharedBlocks)
	fmt.Fprintf(stdout, "families:        %d\n", st.DistinctFamilies)
	fmt.Fprintf(stdout, "sum model bytes: %.3f GB\n", float64(st.SumModelBytes)/1e9)
	fmt.Fprintf(stdout, "unique bytes:    %.3f GB\n", float64(st.UniqueBytes)/1e9)
	fmt.Fprintf(stdout, "sharing ratio:   %.3f (unique/sum; lower = more savings)\n", st.SharingRatio)
	fmt.Fprintf(stdout, "mean shared:     %.1f%% of each model\n", 100*st.MeanSharedFrac)

	if *out != "" {
		data, err := json.MarshalIndent(lib, "", "  ")
		if err != nil {
			return fmt.Errorf("encode library: %w", err)
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return fmt.Errorf("write library: %w", err)
		}
		fmt.Fprintf(stdout, "wrote %s (%d bytes)\n", *out, len(data))
	}
	return nil
}
