package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunGenerateAndServe(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-alg", "gen", "-servers", "5", "-users", "10", "-models", "10",
		"-rate", "20", "-duration", "600"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"TrimCaching Gen", "QoS hit ratio", "latency", "peak concurrency"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunSaveAndReplayTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	var out bytes.Buffer
	err := run([]string{"-alg", "popularity", "-servers", "4", "-users", "8", "-models", "9",
		"-rate", "15", "-duration", "600", "-save-trace", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("trace not written: %v", err)
	}
	// Replay the same trace with a different algorithm.
	out.Reset()
	err = run([]string{"-alg", "independent", "-servers", "4", "-users", "8", "-models", "9",
		"-replay", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Independent Caching") {
		t.Fatalf("replay output:\n%s", out.String())
	}
}

func TestRunMobilityTimeline(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-alg", "gen", "-servers", "5", "-users", "10", "-models", "10",
		"-mobility", "20", "-checkpoint", "10", "-replace-threshold", "0.05", "-mob-realizations", "10"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"TrimCaching Gen", "time (min)", "replacements"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("mobility output missing %q:\n%s", want, out.String())
		}
	}
	// The incremental and rebuild paths must print identical timelines.
	var reb bytes.Buffer
	err = run([]string{"-alg", "gen", "-servers", "5", "-users", "10", "-models", "10",
		"-mobility", "20", "-checkpoint", "10", "-replace-threshold", "0.05", "-mob-realizations", "10",
		"-rebuild"}, &reb)
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != reb.String() {
		t.Fatalf("incremental and rebuild timelines differ:\n%s\nvs\n%s", out.String(), reb.String())
	}
}

func TestRunUnknownAlgorithm(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-alg", "nope"}, &out); err == nil {
		t.Fatal("unknown algorithm must error")
	}
}

func TestRunBadTraceFile(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-replay", "/nonexistent/trace.jsonl"}, &out); err == nil {
		t.Fatal("missing trace file must error")
	}
}

func TestRunRejectsPositionalArgs(t *testing.T) {
	// The old spelling `-trace <file>` must error loudly, not silently run
	// a mobility timeline with the file ignored.
	var out bytes.Buffer
	err := run([]string{"-alg", "independent", "-trace", "requests.jsonl"}, &out)
	if err == nil || !strings.Contains(err.Error(), "-replay") {
		t.Fatalf("positional arg not rejected with -replay hint: %v", err)
	}
}

func TestRunTraceDrivenTimeline(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-alg", "gen", "-servers", "5", "-users", "10", "-models", "10",
		"-trace", "-mobility", "30", "-checkpoint", "10", "-rate", "40",
		"-replace-threshold", "0.2", "-trigger-window", "2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"trace-driven", "measured degradation over 2 checkpoints", "time (min)", "replacements"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("trace-driven output missing %q:\n%s", want, out.String())
		}
	}
	// The trace track must be mode-independent too: incremental and rebuild
	// engines print identical timelines.
	var reb bytes.Buffer
	err = run([]string{"-alg", "gen", "-servers", "5", "-users", "10", "-models", "10",
		"-trace", "-mobility", "30", "-checkpoint", "10", "-rate", "40",
		"-replace-threshold", "0.2", "-trigger-window", "2", "-rebuild"}, &reb)
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != reb.String() {
		t.Fatalf("incremental and rebuild trace timelines differ:\n%s\nvs\n%s", out.String(), reb.String())
	}
}

func TestRunTraceDrivenSharded(t *testing.T) {
	// -trace -shards N: the sharded engine serves each cell's owned
	// arrivals and the timeline adds the aggregated per-window serving
	// columns.
	var out bytes.Buffer
	err := run([]string{"-alg", "gen", "-servers", "8", "-users", "60", "-models", "16",
		"-trace", "-shards", "2", "-mobility", "30", "-checkpoint", "10", "-rate", "40",
		"-replace-threshold", "0.2", "-trigger-window", "2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"trace-driven", "2 cells", "requests", "p99"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("sharded trace output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunGalleryUnknownFamily(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-gallery", "nosuch"}, &out)
	if err == nil {
		t.Fatal("unknown gallery family must error")
	}
	for _, want := range []string{"outage", "flashcrowd", "diurnal", "churn", "degrade", "regional"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("unknown-family error does not list %q: %v", want, err)
		}
	}
}

func TestRunGalleryDegradeFamily(t *testing.T) {
	// A reduced-clock degrade run through both engines: the timeline must
	// carry the shrink and restore event labels and a recovery line.
	var out bytes.Buffer
	err := run([]string{"-gallery", "degrade", "-users", "120", "-mobility", "60"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"degrade(3 servers -> 2.02GB)", "degrade(3 servers restored)", "recovery", "sharded"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("degrade gallery output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunGalleryRegionalFamily(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-gallery", "regional", "-users", "120", "-mobility", "60"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"regional(disk down)", "regional(rect -> 2.02GB)", "regional(disk recovered)", "regional(rect recovered)"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("regional gallery output missing %q:\n%s", want, out.String())
		}
	}
}
