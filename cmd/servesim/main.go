// Command servesim runs the event-driven serving simulator end to end:
// build a library and scenario, place models with a chosen algorithm,
// generate (or replay) a Poisson request trace, and report route counts,
// QoS hit ratio, and latency percentiles under processor-shared spectrum.
// With -mobility it instead drives the incremental dynamics engine: users
// walk the §VII-E mobility model, the hit ratio is re-measured under
// fading at every checkpoint, and the placement is repaired whenever it
// degrades past -replace-threshold. With -trace the engine runs its
// trace-driven track instead: every checkpoint synthesizes a request
// window at -rate arrivals/user/hour, serves it through the event-driven
// simulator, and replacement fires on measured hit-ratio degradation
// (windowed over -trigger-window checkpoints). With -shards N the mobility
// timeline runs on the sharded multi-cell engine instead: the area is
// partitioned into N geographic cells with per-cell instances and
// placements, and the reported hit ratio is the request-mass-weighted
// aggregate; combined with -trace each cell serves its owned users'
// arrivals and the timeline adds the aggregated per-window request counts
// and exact latency quantiles. With -gallery <name> it runs one
// scenario-gallery timeline (outage, flashcrowd, diurnal, churn, degrade,
// regional) through BOTH the unsharded and the sharded engine and prints
// the event-annotated trajectories; unset flags keep the gallery's golden
// defaults, so a bare -gallery run reproduces the checked-in artifacts. An
// unknown name fails with the list of available families.
//
// Usage:
//
//	servesim -alg gen -rate 60 -duration 1800
//	servesim -alg independent -replay requests.jsonl
//	servesim -alg gen -save-trace requests.jsonl
//	servesim -alg gen -mobility 120 -replace-threshold 0.1
//	servesim -alg gen -trace -replace-threshold 0.1 -trigger-window 2
//	servesim -alg gen -mobility 120 -shards 4 -users 300
//	servesim -gallery outage -users 100000 -servers 100 -models 60 -mob-realizations 25
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"trimcaching/internal/cachesim"
	"trimcaching/internal/dynamics"
	"trimcaching/internal/experiments"
	"trimcaching/internal/libgen"
	"trimcaching/internal/placement"
	"trimcaching/internal/rng"
	"trimcaching/internal/scenario"
	"trimcaching/internal/shard"
	"trimcaching/internal/topology"
	"trimcaching/internal/trace"
	"trimcaching/internal/wireless"
	"trimcaching/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "servesim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("servesim", flag.ContinueOnError)
	alg := fs.String("alg", "gen", "placement algorithm: spec, gen, gen-ratio, independent, popularity")
	servers := fs.Int("servers", 10, "edge servers M")
	users := fs.Int("users", 30, "users K")
	models := fs.Int("models", 30, "library size I")
	capacityGB := fs.Float64("capacity", 0.75, "per-server storage in GB")
	rate := fs.Float64("rate", 30, "requests per user per hour")
	duration := fs.Float64("duration", 1800, "trace horizon in seconds")
	seed := fs.Uint64("seed", 1, "random seed")
	traceIn := fs.String("replay", "", "replay this JSONL trace instead of generating one")
	traceOut := fs.String("save-trace", "", "write the generated trace to this JSONL file")
	mobilityMin := fs.Int("mobility", 0, "run a mobility timeline of this many minutes instead of serving a trace")
	checkpointMin := fs.Int("checkpoint", 10, "mobility checkpoint interval in minutes")
	replaceThreshold := fs.Float64("replace-threshold", 0, "re-place when the hit ratio degrades by this fraction (0 = never)")
	mobRealizations := fs.Int("mob-realizations", 200, "fading realizations per mobility checkpoint")
	rebuild := fs.Bool("rebuild", false, "use full per-checkpoint instance rebuilds instead of incremental deltas")
	traceDriven := fs.Bool("trace", false, "trace-driven mobility: measure checkpoints by serving synthesized request windows at -rate instead of fading Monte-Carlo")
	triggerWindow := fs.Int("trigger-window", 1, "checkpoints averaged by the trace-driven replacement trigger")
	shards := fs.Int("shards", 1, "partition the area into this many geographic cells with per-cell engines (mobility or trace mode)")
	gallery := fs.String("gallery", "", "run this scenario-gallery timeline (outage, flashcrowd, diurnal, churn, degrade, regional) through both engines instead of serving a trace")
	reserveModels := fs.Int("reserve-models", 0, "extra adapters held back for gallery grow events (gallery mode)")
	galleryJSON := fs.String("gallery-json", "", "also write the gallery artifact (both legs) to this JSON file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// -trace used to take the replay path as a value; a stray positional
	// argument is almost certainly that old spelling, so fail loudly
	// instead of silently ignoring it (and every flag after it).
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (replay a trace file with -replay <file>)", fs.Arg(0))
	}
	if *traceDriven && *mobilityMin <= 0 {
		*mobilityMin = 120 // the §VII-E timeline
	}
	if *gallery != "" {
		// Start from the golden-pinned defaults and apply only the flags
		// the user actually set, so a bare -gallery run reproduces the
		// checked-in reduced-scale artifacts bit for bit.
		set := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
		gcfg := experiments.DefaultGalleryConfig()
		if set["servers"] {
			gcfg.Servers = *servers
		}
		if set["users"] {
			gcfg.Users = *users
		}
		if set["models"] {
			gcfg.Models = *models
		}
		if set["reserve-models"] {
			gcfg.ReserveModels = *reserveModels
		}
		if set["capacity"] {
			gcfg.CapacityBytes = int64(*capacityGB * 1e9)
		}
		if set["mobility"] {
			gcfg.DurationMin = *mobilityMin
		}
		if set["checkpoint"] {
			gcfg.CheckpointMin = *checkpointMin
		}
		if set["mob-realizations"] {
			gcfg.Realizations = *mobRealizations
		}
		if set["shards"] {
			gcfg.Shards = *shards
		}
		if set["seed"] {
			gcfg.Seed = *seed
		}
		if *rebuild {
			gcfg.Mode = dynamics.Rebuild
		}
		return runGallery(stdout, *gallery, gcfg, *galleryJSON)
	}

	algorithm, err := placement.ByName(*alg)
	if err != nil {
		return err
	}
	src := rng.New(*seed)
	pool, err := libgen.GenerateSpecial(libgen.DefaultSpecialConfig(100), src.Split("pool"))
	if err != nil {
		return err
	}
	lib, err := libgen.TakeStratified(pool, *models, src.Split("take"))
	if err != nil {
		return err
	}
	w := wireless.DefaultConfig()
	w.BackhaulBps = 1e9
	ins, err := scenario.Generate(lib, scenario.GenConfig{
		Topology: topology.Config{AreaSideM: 1000, NumServers: *servers, NumUsers: *users, CoverageRadiusM: w.CoverageRadiusM},
		Wireless: w,
		Workload: workload.DefaultConfig(),
	}, src.Split("instance"))
	if err != nil {
		return err
	}
	caps := placement.UniformCapacities(ins.NumServers(), int64(*capacityGB*1e9))
	if *mobilityMin > 0 {
		mob := mobilityOptions{
			durationMin:   *mobilityMin,
			checkpointMin: *checkpointMin,
			threshold:     *replaceThreshold,
			realizations:  *mobRealizations,
			rebuild:       *rebuild,
			traceDriven:   *traceDriven,
			traceRate:     *rate,
			triggerWindow: *triggerWindow,
			shards:        *shards,
		}
		return runMobility(stdout, ins, algorithm, caps, mob, src.Split("dynamics"))
	}
	eval, err := placement.NewEvaluator(ins)
	if err != nil {
		return err
	}
	p, err := algorithm.Place(eval, caps)
	if err != nil {
		return err
	}

	var tr *trace.Trace
	if *traceIn != "" {
		f, err := os.Open(*traceIn)
		if err != nil {
			return fmt.Errorf("open trace: %w", err)
		}
		defer f.Close()
		tr, err = trace.ReadJSONL(f)
		if err != nil {
			return err
		}
	} else {
		tr, err = trace.Generate(ins.Workload(), *rate, *duration, src.Split("trace"))
		if err != nil {
			return err
		}
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				return fmt.Errorf("create trace file: %w", err)
			}
			if err := tr.WriteJSONL(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote %d requests to %s\n", len(tr.Requests), *traceOut)
		}
	}

	res, err := cachesim.ServeTrace(ins, p, tr, cachesim.DefaultEventConfig(), src.Split("serve"))
	if err != nil {
		return err
	}

	tw := tabwriter.NewWriter(stdout, 0, 0, 2, ' ', 0)
	fmt.Fprintf(tw, "algorithm\t%s\n", algorithm.Name())
	fmt.Fprintf(tw, "scenario\tM=%d K=%d I=%d Q=%.2fGB\n", ins.NumServers(), ins.NumUsers(), ins.NumModels(), *capacityGB)
	fmt.Fprintf(tw, "requests\t%d\n", res.Requests)
	fmt.Fprintf(tw, "routes\tdirect=%d relay=%d cloud=%d failed=%d\n", res.Direct, res.Relay, res.Cloud, res.Failed)
	fmt.Fprintf(tw, "QoS hit ratio\t%.4f\n", res.HitRatio)
	fmt.Fprintf(tw, "latency\tmean=%v p50=%v p95=%v p99=%v\n",
		res.MeanLatency.Round(1_000_000), res.P50Latency.Round(1_000_000),
		res.P95Latency.Round(1_000_000), res.P99Latency.Round(1_000_000))
	fmt.Fprintf(tw, "peak concurrency\t%d downloads on one server\n", res.PeakConcurrency)
	return tw.Flush()
}

// runGallery drives one gallery scenario through both engines and prints
// the event-annotated timelines side by side.
func runGallery(stdout io.Writer, name string, base experiments.GalleryConfig, jsonOut string) error {
	cfg, err := experiments.GalleryScenario(name, base)
	if err != nil {
		return err
	}
	unsharded, err := experiments.RunGallery(cfg)
	if err != nil {
		return err
	}
	sharded, err := experiments.RunGallerySharded(cfg)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(stdout, 0, 0, 2, ' ', 0)
	fmt.Fprintf(tw, "gallery scenario\t%s\n", cfg.Name)
	fmt.Fprintf(tw, "deployment\tM=%d K=%d I=%d (+%d reserve) Q=%.2fGB shards=%d seed=%d\n",
		cfg.Servers, cfg.Users, cfg.Models, cfg.ReserveModels, float64(cfg.CapacityBytes)/1e9, cfg.Shards, cfg.Seed)
	fmt.Fprintf(tw, "timeline\t%d min, %d min checkpoints, %d fading realizations\n",
		cfg.DurationMin, cfg.CheckpointMin, cfg.Realizations)
	for _, res := range []*experiments.GalleryResult{unsharded, sharded} {
		leg := "unsharded"
		if res.Sharded {
			leg = fmt.Sprintf("sharded (%d cells, %d handoffs, %d slot regrows)", cfg.Shards, res.Handoffs, res.Grows)
		}
		fmt.Fprintf(tw, "\t\t\n")
		fmt.Fprintf(tw, "engine\t%s\t\n", leg)
		fmt.Fprintf(tw, "time (min)\thit ratio\tevents\n")
		for _, st := range res.Steps {
			marker := ""
			if st.Replaced {
				marker = "<- replaced"
			}
			events := ""
			for i, ev := range st.Events {
				if i > 0 {
					events += ", "
				}
				events += ev
			}
			if events != "" && marker != "" {
				marker += " "
			}
			fmt.Fprintf(tw, "%.0f\t%.4f\t%s%s\n", st.TimeMin, st.HitRatio, marker, events)
		}
		fmt.Fprintf(tw, "replacements\t%d (final library %d models)\t\n", res.Replacements, res.FinalModels)
		if res.PreOutageHit > 0 {
			rec := "never"
			if res.RecoveryCheckpoints >= 0 {
				rec = fmt.Sprintf("%d checkpoints", res.RecoveryCheckpoints)
			}
			fmt.Fprintf(tw, "recovery\tpre-outage hit %.4f, recovered to %.0f%% in %s\t\n",
				res.PreOutageHit, 100*cfg.RecoveryFrac, rec)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if jsonOut != "" {
		artifact := struct {
			Config    experiments.GalleryConfig  `json:"config"`
			Unsharded *experiments.GalleryResult `json:"unsharded"`
			Sharded   *experiments.GalleryResult `json:"sharded"`
		}{cfg, unsharded, sharded}
		buf, err := json.MarshalIndent(artifact, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", jsonOut)
	}
	return nil
}

// mobilityOptions collects the -mobility / -trace mode knobs.
type mobilityOptions struct {
	durationMin, checkpointMin int
	threshold                  float64
	realizations               int
	rebuild                    bool
	traceDriven                bool
	traceRate                  float64
	triggerWindow              int
	shards                     int
}

// runMobility drives the dynamics engine and prints the per-checkpoint
// timeline.
func runMobility(stdout io.Writer, ins *scenario.Instance, alg placement.Algorithm, caps []int64,
	opt mobilityOptions, src *rng.Source) error {
	mode := dynamics.Incremental
	if opt.rebuild {
		mode = dynamics.Rebuild
	}
	var measurement dynamics.Measurement
	var trigger dynamics.Trigger = dynamics.NeverTrigger{}
	measureDesc := fmt.Sprintf("fading, %d realizations/checkpoint", opt.realizations)
	if opt.traceDriven {
		measurement = &dynamics.TraceMeasurement{
			RequestsPerUserPerHour: opt.traceRate,
			WindowS:                float64(opt.checkpointMin) * 60,
		}
		measureDesc = fmt.Sprintf("trace-driven, %.0f requests/user/hour", opt.traceRate)
		if opt.threshold > 0 {
			trigger = &dynamics.TraceTrigger{Window: opt.triggerWindow, Degradation: opt.threshold}
		}
	} else if opt.threshold > 0 {
		trigger = dynamics.ThresholdTrigger{Degradation: opt.threshold}
	}
	type timeline struct {
		timeMin  []float64
		hit      []float64
		replaced []bool
		serve    []cachesim.EventResult
		count    int
		extra    string
	}
	var tl timeline
	if opt.shards > 1 {
		cfg := shard.Config{
			Instance:      ins,
			Capacities:    caps,
			Tracks:        []dynamics.Track{{Algorithm: alg, Trigger: trigger}},
			DurationMin:   opt.durationMin,
			CheckpointMin: opt.checkpointMin,
			SlotS:         5,
			Realizations:  opt.realizations,
			Mode:          mode,
			Shards:        opt.shards,
		}
		if opt.traceDriven {
			// Sharded trace-driven serving: each cell synthesizes its owned
			// users' arrivals and serves them; the steps then carry the
			// aggregated per-window serving stats.
			cfg.Trace = &shard.TraceConfig{
				RequestsPerUserPerHour: opt.traceRate,
				WindowS:                float64(opt.checkpointMin) * 60,
			}
		}
		res, err := shard.Run(cfg, src)
		if err != nil {
			return err
		}
		for _, s := range res.Steps {
			tl.timeMin = append(tl.timeMin, s.TimeMin)
			tl.hit = append(tl.hit, s.HitRatio[0])
			tl.replaced = append(tl.replaced, s.Replaced[0])
			if opt.traceDriven {
				tl.serve = append(tl.serve, s.Serve[0])
			}
		}
		tl.count = res.Replacements[0]
		tl.extra = fmt.Sprintf("shards\t%d cells, %d handoffs, %d grows\n", res.Cells, res.Handoffs, res.Grows)
	} else {
		res, err := dynamics.Run(dynamics.Config{
			Instance:      ins,
			Capacities:    caps,
			Tracks:        []dynamics.Track{{Algorithm: alg, Trigger: trigger}},
			DurationMin:   opt.durationMin,
			CheckpointMin: opt.checkpointMin,
			SlotS:         5,
			Realizations:  opt.realizations,
			Mode:          mode,
			Measurement:   measurement,
		}, src)
		if err != nil {
			return err
		}
		for _, s := range res.Steps {
			tl.timeMin = append(tl.timeMin, s.TimeMin)
			tl.hit = append(tl.hit, s.HitRatio[0])
			tl.replaced = append(tl.replaced, s.Replaced[0])
		}
		tl.count = res.Replacements[0]
	}
	tw := tabwriter.NewWriter(stdout, 0, 0, 2, ' ', 0)
	fmt.Fprintf(tw, "algorithm\t%s\n", alg.Name())
	fmt.Fprintf(tw, "scenario\tM=%d K=%d I=%d\n", ins.NumServers(), ins.NumUsers(), ins.NumModels())
	fmt.Fprintf(tw, "policy\t%s; %s\n", trigger.Name(), measureDesc)
	if tl.extra != "" {
		fmt.Fprint(tw, tl.extra)
	}
	if tl.serve != nil {
		fmt.Fprintf(tw, "time (min)\thit ratio\trequests\tp50\tp99\treplaced\n")
		for i := range tl.timeMin {
			marker := ""
			if tl.replaced[i] {
				marker = "  <- replaced"
			}
			sv := tl.serve[i]
			fmt.Fprintf(tw, "%.0f\t%.4f\t%d\t%v\t%v\t%s\n", tl.timeMin[i], tl.hit[i],
				sv.Requests, sv.P50Latency.Round(1_000_000), sv.P99Latency.Round(1_000_000), marker)
		}
	} else {
		fmt.Fprintf(tw, "time (min)\thit ratio\treplaced\n")
		for i := range tl.timeMin {
			marker := ""
			if tl.replaced[i] {
				marker = "  <- replaced"
			}
			fmt.Fprintf(tw, "%.0f\t%.4f\t%s\n", tl.timeMin[i], tl.hit[i], marker)
		}
	}
	fmt.Fprintf(tw, "replacements\t%d\n", tl.count)
	return tw.Flush()
}
