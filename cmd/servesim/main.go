// Command servesim runs the event-driven serving simulator end to end:
// build a library and scenario, place models with a chosen algorithm,
// generate (or replay) a Poisson request trace, and report route counts,
// QoS hit ratio, and latency percentiles under processor-shared spectrum.
//
// Usage:
//
//	servesim -alg gen -rate 60 -duration 1800
//	servesim -alg independent -trace requests.jsonl
//	servesim -alg gen -save-trace requests.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"trimcaching/internal/cachesim"
	"trimcaching/internal/libgen"
	"trimcaching/internal/placement"
	"trimcaching/internal/rng"
	"trimcaching/internal/scenario"
	"trimcaching/internal/topology"
	"trimcaching/internal/trace"
	"trimcaching/internal/wireless"
	"trimcaching/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "servesim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("servesim", flag.ContinueOnError)
	alg := fs.String("alg", "gen", "placement algorithm: spec, gen, gen-ratio, independent, popularity")
	servers := fs.Int("servers", 10, "edge servers M")
	users := fs.Int("users", 30, "users K")
	models := fs.Int("models", 30, "library size I")
	capacityGB := fs.Float64("capacity", 0.75, "per-server storage in GB")
	rate := fs.Float64("rate", 30, "requests per user per hour")
	duration := fs.Float64("duration", 1800, "trace horizon in seconds")
	seed := fs.Uint64("seed", 1, "random seed")
	traceIn := fs.String("trace", "", "replay this JSONL trace instead of generating one")
	traceOut := fs.String("save-trace", "", "write the generated trace to this JSONL file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	algorithm, err := placement.ByName(*alg)
	if err != nil {
		return err
	}
	src := rng.New(*seed)
	pool, err := libgen.GenerateSpecial(libgen.DefaultSpecialConfig(100), src.Split("pool"))
	if err != nil {
		return err
	}
	lib, err := libgen.TakeStratified(pool, *models, src.Split("take"))
	if err != nil {
		return err
	}
	w := wireless.DefaultConfig()
	w.BackhaulBps = 1e9
	ins, err := scenario.Generate(lib, scenario.GenConfig{
		Topology: topology.Config{AreaSideM: 1000, NumServers: *servers, NumUsers: *users, CoverageRadiusM: w.CoverageRadiusM},
		Wireless: w,
		Workload: workload.DefaultConfig(),
	}, src.Split("instance"))
	if err != nil {
		return err
	}
	eval, err := placement.NewEvaluator(ins)
	if err != nil {
		return err
	}
	caps := placement.UniformCapacities(ins.NumServers(), int64(*capacityGB*1e9))
	p, err := algorithm.Place(eval, caps)
	if err != nil {
		return err
	}

	var tr *trace.Trace
	if *traceIn != "" {
		f, err := os.Open(*traceIn)
		if err != nil {
			return fmt.Errorf("open trace: %w", err)
		}
		defer f.Close()
		tr, err = trace.ReadJSONL(f)
		if err != nil {
			return err
		}
	} else {
		tr, err = trace.Generate(ins.Workload(), *rate, *duration, src.Split("trace"))
		if err != nil {
			return err
		}
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				return fmt.Errorf("create trace file: %w", err)
			}
			if err := tr.WriteJSONL(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote %d requests to %s\n", len(tr.Requests), *traceOut)
		}
	}

	res, err := cachesim.ServeTrace(ins, p, tr, cachesim.DefaultEventConfig(), src.Split("serve"))
	if err != nil {
		return err
	}

	tw := tabwriter.NewWriter(stdout, 0, 0, 2, ' ', 0)
	fmt.Fprintf(tw, "algorithm\t%s\n", algorithm.Name())
	fmt.Fprintf(tw, "scenario\tM=%d K=%d I=%d Q=%.2fGB\n", ins.NumServers(), ins.NumUsers(), ins.NumModels(), *capacityGB)
	fmt.Fprintf(tw, "requests\t%d\n", res.Requests)
	fmt.Fprintf(tw, "routes\tdirect=%d relay=%d cloud=%d failed=%d\n", res.Direct, res.Relay, res.Cloud, res.Failed)
	fmt.Fprintf(tw, "QoS hit ratio\t%.4f\n", res.HitRatio)
	fmt.Fprintf(tw, "latency\tmean=%v p50=%v p95=%v p99=%v\n",
		res.MeanLatency.Round(1_000_000), res.P50Latency.Round(1_000_000),
		res.P95Latency.Round(1_000_000), res.P99Latency.Round(1_000_000))
	fmt.Fprintf(tw, "peak concurrency\t%d downloads on one server\n", res.PeakConcurrency)
	return tw.Flush()
}
